// ringctl: command-line driver for ad-hoc experiments on a simulated Ring
// deployment. Everything the figure harnesses hard-code is a flag here, so
// downstream users can probe their own configurations:
//
//   ringctl latency    --scheme=srs32 --size=4096 --reps=2000
//   ringctl throughput --scheme=rep3 --clients=4 --rate=400000 --groups=5
//   ringctl recover    --scheme=srs32 --entries=5000 --victim=1
//   ringctl reliability --k=3 --m=2 --stretch=6
//   ringctl schemes    --shards=4 --redundant=3
//   ringctl stats      --scheme=srs32 --reps=500 [--json|--prom]
//   ringctl simstats   --scheme=rep3 --reps=2000 --cores-per-node=2
//   ringctl trace      --scheme=srs32 --trace_out=trace.json
//   ringctl autotier   --scheme=rep3 --cold-scheme=srs32 --keys=240
//   ringctl calibrate  --json
//   ringctl chaos      --scheme=rep3 --seed=5 --plan="crash node=1 at=5ms"
//   ringctl watch      --scheme=rep3 --seed=5 --window-us=1000
//   ringctl report     --scheme=rep3 --seed=5 --report-events=12
//   ringctl mc         --scenario=wedged-write --spec-out=ce.mcspec
//   ringctl mc         --replay=ce.mcspec
//   ringctl cluster status --shards=6 --spares=2
//   ringctl cluster add    --scheme=srs32 --count=2 --keys=500
//   ringctl cluster remove --scheme=rep3 --keys=500
//
// `cluster` exercises the elastic membership path (§13): it loads a key
// population, performs online scale-out (`add`) or scale-in (`remove`)
// through the consensus-driven rebalance driver while probing reads, then
// prints the drain stats, the resulting cluster table, and a full read-back
// verification of the population.
//
// `watch` and `report` run the chaos scenario with the telemetry pipeline
// enabled: watch prints the windowed SLI table live as windows close;
// report renders the post-mortem (fault timeline, SLI degradation, flight
// recorder context around each availability dip) after the run.
//
// `mc` runs the ring-mc schedule-space model checker (src/mc) over a preset
// scenario: DPOR + sleep sets over message deliveries, bounded reorderings,
// drops and crashes, with the chaos oracles checking every trace. A found
// violation is shrunk to a minimal spec file that `--replay` reproduces
// byte-identically.
//
// Commands can also be selected with --mode=<command>, and any
// latency/trace run can emit a Chrome trace_event file via
// --trace_out=<file> (open it in chrome://tracing or ui.perfetto.dev).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/fault/fault.h"
#include "src/mc/explorer.h"
#include "src/mc/scenarios.h"
#include "src/mc/spec.h"
#include "src/membership/rebalance.h"
#include "src/obs/export.h"
#include "src/obs/hub.h"
#include "src/obs/report.h"
#include "src/policy/autotier.h"
#include "src/reliability/models.h"
#include "src/gf/gf256.h"
#include "src/ring/cluster.h"
#include "src/sim/calibrate.h"
#include "src/workload/drivers.h"
#include "src/workload/zipf.h"

namespace ring {
namespace {

Result<MemgestDescriptor> SchemeFromName(const std::string& name) {
  if (name.rfind("rep", 0) == 0 && name.size() == 4) {
    const uint32_t r = static_cast<uint32_t>(name[3] - '0');
    if (r >= 1 && r <= 9) {
      return MemgestDescriptor::Replicated(r, name);
    }
  }
  if (name.rfind("srs", 0) == 0 && name.size() == 5) {
    const uint32_t k = static_cast<uint32_t>(name[3] - '0');
    const uint32_t m = static_cast<uint32_t>(name[4] - '0');
    if (k >= 1 && m >= 1) {
      return MemgestDescriptor::ErasureCoded(k, m, name);
    }
  }
  return InvalidArgumentError(
      "scheme must be repN (e.g. rep3) or srsKM (e.g. srs32), got '" + name +
      "'");
}

// Applies host calibration (measured GF kernel throughput) to the simulated
// coding cost model when --calibrate is set. Opt-in: without the flag the
// defaults — and therefore all figure outputs — are untouched.
void MaybeCalibrate(FlagSet& flags, sim::SimParams& params) {
  if (!flags.GetBool("calibrate")) {
    return;
  }
  const auto cal = sim::MeasureCodingThroughput();
  const sim::SimParams calibrated = sim::Calibrated(params, cal);
  std::printf(
      "calibrated coding cost model (%s kernels): gf_byte_ns %.3f -> %.4f, "
      "decode_byte_ns %.3f -> %.4f\n",
      gf::RegionImplName(cal.impl), params.gf_byte_ns, calibrated.gf_byte_ns,
      params.decode_byte_ns, calibrated.decode_byte_ns);
  params = calibrated;
}

int RunCalibrate(FlagSet& flags) {
  const size_t block = static_cast<size_t>(flags.GetInt("block"));
  const auto cal = sim::MeasureCodingThroughput(block);
  const sim::SimParams base;
  const sim::SimParams derived = sim::Calibrated(base, cal);
  if (flags.GetBool("json")) {
    std::printf(
        "{\n"
        "  \"impl\": \"%s\",\n"
        "  \"block_bytes\": %zu,\n"
        "  \"add_gbps\": %.3f,\n"
        "  \"mulacc_gbps\": %.3f,\n"
        "  \"fused_encode_gbps\": %.3f,\n"
        "  \"decode_gbps\": %.3f,\n"
        "  \"gf_byte_ns\": %.6f,\n"
        "  \"decode_byte_ns\": %.6f\n"
        "}\n",
        gf::RegionImplName(cal.impl), cal.block_bytes, cal.add_bytes_per_ns,
        cal.mulacc_bytes_per_ns, cal.fused_bytes_per_ns,
        cal.decode_bytes_per_ns, derived.gf_byte_ns, derived.decode_byte_ns);
    return 0;
  }
  std::printf("coding substrate: %s kernels, %zu B regions\n",
              gf::RegionImplName(cal.impl), cal.block_bytes);
  std::printf("  xor (AddRegion)          %8.2f GB/s\n", cal.add_bytes_per_ns);
  std::printf("  mul-acc (MulAddRegion)   %8.2f GB/s  (random coefficients)\n",
              cal.mulacc_bytes_per_ns);
  std::printf("  fused RS(3,2) encode     %8.2f GB/s  per source byte\n",
              cal.fused_bytes_per_ns);
  std::printf("  RS(3,2) decode           %8.2f GB/s  per source byte\n",
              cal.decode_bytes_per_ns);
  std::printf("derived SimParams (defaults %.3f / %.3f):\n", base.gf_byte_ns,
              base.decode_byte_ns);
  std::printf("  gf_byte_ns     = %.6f\n", derived.gf_byte_ns);
  std::printf("  decode_byte_ns = %.6f\n", derived.decode_byte_ns);
  std::printf(
      "apply with --calibrate on `ringctl latency|throughput|recover`\n");
  return 0;
}

Key KeyInShard(uint32_t shard, uint32_t num_shards, int i) {
  for (int salt = 0;; ++salt) {
    Key k = "ctl" + std::to_string(i) + "-" + std::to_string(salt);
    if (KeyShard(k, num_shards) == shard) {
      return k;
    }
  }
}

// Number of end-to-end (kOp) spans recorded so far; used to slice the
// breakdown list by measurement pass (op spans complete in issue order under
// a closed-loop driver).
size_t OpSpanCount(const obs::Tracer& tracer) {
  size_t n = 0;
  for (const auto& s : tracer.spans()) {
    if (s.category == obs::Category::kOp) {
      ++n;
    }
  }
  return n;
}

void PrintBreakdownRow(const std::string& label, const obs::BreakdownMean& b) {
  std::printf(
      "  %-10s network %6.2f  coding %6.2f  cpu %6.2f  queue %6.2f  "
      "wait %6.2f  = %7.2f us end-to-end  (%llu ops)\n",
      label.c_str(), b.network_us, b.coding_us, b.cpu_us, b.queue_us,
      b.wait_us, b.total_us, static_cast<unsigned long long>(b.ops));
}

int RunLatency(FlagSet& flags) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.groups = static_cast<uint32_t>(flags.GetInt("groups"));
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  o.params.wire_jitter_ns = 400;
  MaybeCalibrate(flags, o.params);
  RingCluster cluster(o);
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }
  workload::ClosedLoopDriver driver(&cluster);
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  const int reps = static_cast<int>(flags.GetInt("reps"));
  const auto put = driver.MeasurePutLatency(*g, size, reps);
  const auto get = driver.MeasureGetLatency(*g, size, reps);
  const auto move = driver.MeasureMoveLatency(*g, *g, size, reps / 4 + 1);
  std::printf("%s, %zu B objects, %d reps:\n", desc->ToString().c_str(), size,
              reps);
  std::printf("  put   median %7.2f us   p90 %7.2f us\n", put.Median(),
              put.Percentile(90));
  std::printf("  get   median %7.2f us   p90 %7.2f us\n", get.Median(),
              get.Percentile(90));
  std::printf("  move  median %7.2f us   p90 %7.2f us\n", move.Median(),
              move.Percentile(90));

  const std::string trace_out = flags.GetString("trace_out");
  if (trace_out.empty()) {
    return 0;
  }
  // Traced pass: the requested scheme plus rep3 and srs32, so the emitted
  // trace always covers both a replicated and an erasure-coded put path.
  std::vector<std::pair<std::string, MemgestId>> traced;
  traced.emplace_back(desc->ToString(), *g);
  for (const char* extra : {"rep3", "srs32"}) {
    if (flags.GetString("scheme") == extra) {
      continue;
    }
    auto d2 = SchemeFromName(extra);
    auto g2 = cluster.CreateMemgest(*d2);
    if (g2.ok()) {
      traced.emplace_back(d2->ToString(), *g2);
    }
  }
  obs::Hub& hub = cluster.simulator().hub();
  hub.tracer().Clear();
  hub.EnableTracing(true);
  const int traced_reps = std::min(reps, 100);
  struct Slice {
    std::string label;
    size_t begin;
    size_t end;
  };
  std::vector<Slice> slices;
  for (const auto& [label, id] : traced) {
    const size_t begin = OpSpanCount(hub.tracer());
    driver.MeasurePutLatency(id, size, traced_reps);
    slices.push_back({label, begin, OpSpanCount(hub.tracer())});
  }
  hub.EnableTracing(false);

  const auto breakdowns = hub.tracer().OpBreakdowns();
  uint64_t max_dev = 0;
  for (const auto& b : breakdowns) {
    const uint64_t sum =
        b.coding_ns + b.cpu_ns + b.network_ns + b.queue_ns + b.wait_ns;
    const uint64_t dev =
        sum > b.total_ns() ? sum - b.total_ns() : b.total_ns() - sum;
    max_dev = std::max(max_dev, dev);
  }
  std::printf("\ntraced put breakdown (%d reps each), per-op means in us:\n",
              traced_reps);
  for (const auto& sl : slices) {
    const std::vector<obs::OpBreakdown> ours(breakdowns.begin() + sl.begin,
                                             breakdowns.begin() + sl.end);
    PrintBreakdownRow(sl.label, obs::MeanBreakdown(ours, "put"));
  }
  std::printf(
      "  breakdown sum == end-to-end latency for all %zu traced ops "
      "(max deviation %llu ns)\n",
      breakdowns.size(), static_cast<unsigned long long>(max_dev));
  if (!hub.tracer().WriteChromeTrace(trace_out)) {
    std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    return 1;
  }
  std::printf("  wrote %zu spans to %s (open in chrome://tracing or "
              "ui.perfetto.dev)\n",
              hub.tracer().spans().size(), trace_out.c_str());
  return 0;
}

// `ringctl stats`: run a closed-loop put/get/move mix with the metrics
// registry enabled and dump every counter, gauge, histogram and per-link
// byte count it accumulated. --json emits the machine-readable dump (stable
// {name,node,memgest,op} key schema); --prom emits Prometheus text
// exposition instead of the human summary.
int RunStats(FlagSet& flags) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.groups = static_cast<uint32_t>(flags.GetInt("groups"));
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  o.params.wire_jitter_ns = 400;
  RingCluster cluster(o);
  cluster.simulator().hub().EnableMetrics(true);
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }
  workload::ClosedLoopDriver driver(&cluster);
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  const int reps = static_cast<int>(flags.GetInt("reps"));
  driver.MeasurePutLatency(*g, size, reps);
  driver.MeasureGetLatency(*g, size, reps);
  driver.MeasureMoveLatency(*g, *g, size, reps / 4 + 1);
  const obs::Metrics& metrics = cluster.simulator().hub().metrics();
  if (flags.GetBool("json")) {
    std::printf("%s", obs::StatsJson(metrics).c_str());
    return 0;
  }
  if (flags.GetBool("prom")) {
    std::printf("%s", obs::PrometheusText(metrics).c_str());
    return 0;
  }
  std::printf("%s, %zu B objects, %d put + %d get + %d move:\n\n%s",
              desc->ToString().c_str(), size, reps, reps, reps / 4 + 1,
              metrics.Summary().c_str());
  return 0;
}

// `ringctl simstats`: scheduler-core telemetry for a seeded closed-loop
// put/get mix — wall-clock event throughput, queue depth high-water, task
// pool hit rate, and per-shard CPU utilization. `--cores-per-node > 1`
// routes server work through per-key shard homing, which the utilization
// table then shows spreading across shards.
int RunSimstats(FlagSet& flags) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.groups = static_cast<uint32_t>(flags.GetInt("groups"));
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  o.params.cores_per_node =
      static_cast<uint32_t>(flags.GetInt("cores-per-node"));
  RingCluster cluster(o);
  sim::Simulator& simulator = cluster.simulator();
  simulator.hub().EnableMetrics(true);
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }
  workload::ClosedLoopDriver driver(&cluster);
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  const int reps = static_cast<int>(flags.GetInt("reps"));
  const uint64_t events_before = simulator.events_executed();
  const sim::SimTime sim_before = simulator.now();
  sim::TaskPool::ResetStats();
  const auto wall_start = std::chrono::steady_clock::now();
  driver.MeasurePutLatency(*g, size, reps);
  driver.MeasureGetLatency(*g, size, reps);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  const uint64_t events = simulator.events_executed() - events_before;
  const uint64_t sim_ns = simulator.now() - sim_before;
  const sim::TaskPool::Stats pool = sim::TaskPool::stats();
  const sim::EventQueue& queue = simulator.queue();

  std::printf("simstats: %s, %zu B objects, %d puts + %d gets, seed %llu, "
              "%u core(s)/node\n",
              desc->ToString().c_str(), size, reps, reps,
              static_cast<unsigned long long>(o.seed),
              o.params.cores_per_node);
  std::printf("  scheduler core      %s\n",
              queue.mode() == sim::EventQueue::Mode::kCalendar
                  ? "calendar (default; RING_SIM_CORE=heap for the "
                    "legacy binary heap)"
                  : "heap (legacy; unset RING_SIM_CORE for the "
                    "calendar queue)");
  std::printf("  events executed     %" PRIu64 " over %.3f simulated ms\n",
              events, sim_ns / 1e6);
  std::printf("  events/sec (wall)   %.0f  (%.3f s wall)\n",
              wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0,
              wall_s);
  std::printf("  queue depth peak    %zu\n", queue.depth_high_water());
  std::printf("  task pool           %" PRIu64 " inline + %" PRIu64
              " pooled + %" PRIu64 " fresh  (hit rate %" PRIu64 "%%)\n",
              pool.inline_ctors, pool.pool_hits, pool.pool_misses,
              pool.hit_rate_pct());
  const uint32_t cores =
      o.params.cores_per_node == 0 ? 1 : o.params.cores_per_node;
  const obs::Metrics& metrics = simulator.hub().metrics();
  std::printf("  cpu utilization (busy / simulated elapsed):\n");
  for (uint32_t node = 0; node < cluster.runtime().num_server_nodes();
       ++node) {
    std::printf("    node %-3u", node);
    for (uint32_t shard = 0; shard < cores; ++shard) {
      // cpu.shard_busy_ns is keyed by node * cores + shard and only emitted
      // with real sharding; the single-core view is cpu.busy_ns per node.
      const uint64_t busy =
          cores == 1
              ? metrics.CounterValue("cpu.busy_ns", node)
              : metrics.CounterValue("cpu.shard_busy_ns",
                                     node * cores + shard);
      std::printf("  shard%u %5.1f%%", shard,
                  sim_ns == 0 ? 0.0 : 100.0 * static_cast<double>(busy) /
                                          static_cast<double>(sim_ns));
    }
    std::printf("\n");
  }
  return 0;
}

// `ringctl trace`: run a short traced put/get/move mix, print the per
// {span, category} totals and the mean per-op latency breakdowns, and
// optionally write the Chrome trace file.
int RunTrace(FlagSet& flags) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.groups = static_cast<uint32_t>(flags.GetInt("groups"));
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  o.params.wire_jitter_ns = 400;
  RingCluster cluster(o);
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableTracing(true);
  workload::ClosedLoopDriver driver(&cluster);
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  const int reps = std::min(static_cast<int>(flags.GetInt("reps")), 200);
  driver.MeasurePutLatency(*g, size, reps);
  driver.MeasureGetLatency(*g, size, reps);
  driver.MeasureMoveLatency(*g, *g, size, reps / 4 + 1);
  hub.EnableTracing(false);
  std::printf("%s, %zu B objects, traced:\n\n%s\n",
              desc->ToString().c_str(), size, hub.tracer().Summary().c_str());
  const auto breakdowns = hub.tracer().OpBreakdowns();
  std::printf("per-op mean latency breakdown (us):\n");
  for (const char* op : {"put", "get", "move"}) {
    const auto m = obs::MeanBreakdown(breakdowns, op);
    if (m.ops > 0) {
      PrintBreakdownRow(op, m);
    }
  }
  const std::string trace_out = flags.GetString("trace_out");
  if (!trace_out.empty()) {
    if (!hub.tracer().WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu spans to %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                hub.tracer().spans().size(), trace_out.c_str());
  }
  return 0;
}

int RunThroughput(FlagSet& flags) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.groups = static_cast<uint32_t>(flags.GetInt("groups"));
  o.clients = static_cast<uint32_t>(flags.GetInt("clients"));
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  o.params.client_retry_timeout_ns = 200 * sim::kMillisecond;
  if (flags.GetBool("light-clients")) {
    o.params.client_put_byte_ns = 0.0;
    o.params.client_base_ns = 1800;
  }
  MaybeCalibrate(flags, o.params);
  RingCluster cluster(o);
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }
  workload::YcsbSpec spec;
  spec.num_keys = static_cast<uint64_t>(flags.GetInt("keys"));
  spec.value_len = static_cast<uint32_t>(flags.GetInt("size"));
  spec.get_fraction = flags.GetDouble("get-fraction");
  spec.zipfian = flags.GetBool("zipfian");
  std::vector<std::unique_ptr<workload::OpenLoopDriver>> drivers;
  for (uint32_t i = 0; i < o.clients; ++i) {
    workload::OpenLoopDriver::Options opt;
    opt.rate_per_sec = flags.GetDouble("rate");
    opt.memgest = *g;
    opt.spec = spec;
    opt.seed = o.seed * 100 + i;
    drivers.push_back(
        std::make_unique<workload::OpenLoopDriver>(&cluster, i, opt));
    drivers.back()->Start();
  }
  const double seconds = flags.GetDouble("seconds");
  cluster.RunFor(static_cast<sim::SimTime>(0.25 * sim::kSecond));  // warm-up
  uint64_t before = 0;
  for (auto& d : drivers) {
    before += d->completed();
  }
  cluster.RunFor(static_cast<sim::SimTime>(seconds * sim::kSecond));
  uint64_t after = 0;
  uint64_t dropped = 0;
  for (auto& d : drivers) {
    after += d->completed();
    dropped += d->dropped();
    d->Stop();
  }
  std::printf(
      "%s: %u clients x %.0f req/s offered (%.0f%% gets), %u groups ->\n"
      "  %.0f req/s sustained (%.1f%% of offered; %llu shed by flow "
      "control)\n",
      desc->ToString().c_str(), o.clients, flags.GetDouble("rate"),
      spec.get_fraction * 100, o.groups,
      static_cast<double>(after - before) / seconds,
      100.0 * static_cast<double>(after - before) / seconds /
          (flags.GetDouble("rate") * o.clients),
      static_cast<unsigned long long>(dropped));
  return 0;
}

int RunRecover(FlagSet& flags) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.spares = 1;
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  MaybeCalibrate(flags, o.params);
  RingCluster cluster(o);
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const uint32_t victim = static_cast<uint32_t>(flags.GetInt("victim"));
  const int entries = static_cast<int>(flags.GetInt("entries"));
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  for (int i = 0; i < entries; ++i) {
    (void)cluster.Put(KeyInShard(victim, o.groups * o.s, i),
                      MakePatternBuffer(size, i), *g);
  }
  const uint64_t meta = cluster.server(victim).TotalMetadataBytes();
  const sim::SimTime killed_at = cluster.simulator().now();
  cluster.KillNode(victim, /*force_detect=*/true);
  auto& spare = cluster.server(o.s + o.d);
  if (!cluster.RunUntilDone([&] { return spare.serving(); })) {
    std::fprintf(stderr, "spare never started serving\n");
    return 1;
  }
  const double recovery_us =
      static_cast<double>(cluster.simulator().now() - killed_at) / 1e3;
  std::printf(
      "%s: killed node %u holding %.1f KiB metadata (%d entries x %zu B "
      "objects)\n  metadata recovery: %.1f us; first get after failover: ",
      desc->ToString().c_str(), victim, meta / 1024.0, entries, size,
      recovery_us);
  cluster.client(0).RefreshConfigNow();
  auto& client = cluster.client(0);
  client.ResetStats();
  auto got = cluster.Get(KeyInShard(victim, o.groups * o.s, 0));
  std::printf("%.1f us (%s)\n",
              client.latencies().empty() ? -1.0
                                         : client.latencies().values().back(),
              got.ok() ? "ok" : got.status().ToString().c_str());
  return 0;
}

int RunReliability(FlagSet& flags) {
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k"));
  const uint32_t m = static_cast<uint32_t>(flags.GetInt("m"));
  const uint32_t stretch = static_cast<uint32_t>(flags.GetInt("stretch"));
  auto code = srs::SrsCode::Create(k, m, stretch == 0 ? k : stretch);
  if (!code.ok()) {
    std::fprintf(stderr, "%s\n", code.status().ToString().c_str());
    return 1;
  }
  reliability::Environment env;
  env.node_failure_rate = flags.GetDouble("lambda");
  env.dataset_bytes = flags.GetDouble("dataset-gib") * (1ULL << 30);
  reliability::SrsModel model(*code, env);
  const double r = model.Reliability(1.0);
  const double a = model.IntervalAvailability(1.0);
  std::printf("SRS(%u,%u,%u), lambda=%.1f/yr, dataset=%.0f GiB:\n", k, m,
              code->s(), env.node_failure_rate,
              env.dataset_bytes / (1ULL << 30));
  std::printf("  annual reliability   %.10f (%.2f nines)\n", r,
              reliability::Nines(r));
  std::printf("  interval availability %.10f (%.2f nines)\n", a,
              reliability::Nines(a));
  std::printf("  storage overhead     %.2fx, tolerates >= %u failures\n",
              code->StorageOverhead(), m);
  return 0;
}

// `ringctl autotier`: run the adaptive resilience manager against a
// shifting-hotspot workload and report the storage it saves versus keeping
// every key in the hot scheme.
int RunAutotier(FlagSet& flags) {
  auto hot_desc = SchemeFromName(flags.GetString("scheme"));
  auto cold_desc = SchemeFromName(flags.GetString("cold-scheme"));
  if (!hot_desc.ok() || !cold_desc.ok()) {
    std::fprintf(stderr, "%s\n",
                 (hot_desc.ok() ? cold_desc : hot_desc).status().ToString()
                     .c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.groups = static_cast<uint32_t>(flags.GetInt("groups"));
  o.clients = 2;  // client 1 carries the manager's background moves
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  o.params.wire_jitter_ns = 400;
  // Large objects take > the default retry timeout on the simulated wire.
  o.params.client_retry_timeout_ns = 200 * sim::kMillisecond;
  RingCluster cluster(o);
  auto hot = cluster.CreateMemgest(*hot_desc);
  auto cold = cluster.CreateMemgest(*cold_desc);
  if (!hot.ok() || !cold.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n",
                 (hot.ok() ? cold : hot).status().ToString().c_str());
    return 1;
  }

  policy::AutoTierOptions ao;
  ao.epoch_ns =
      static_cast<sim::SimTime>(flags.GetDouble("epoch-ms") *
                                static_cast<double>(sim::kMillisecond));
  ao.policy.mode = flags.GetBool("cost-objective")
                       ? policy::PolicyMode::kCostObjective
                       : policy::PolicyMode::kThreshold;
  ao.policy.hot_enter = flags.GetDouble("hot-enter");
  ao.policy.cold_enter = flags.GetDouble("cold-enter");
  ao.policy.ops_per_month_per_temp = flags.GetDouble("ops-per-temp");
  ao.mover.moves_per_sec = flags.GetDouble("moves-per-sec");
  ao.mover.client_index = 1;
  policy::AutoTierManager manager(
      &cluster,
      {policy::Tier{*hot, *hot_desc, cost::PriceTable{}.hot},
       policy::Tier{*cold, *cold_desc, cost::PriceTable{}.cool}},
      ao);

  const int keys = static_cast<int>(flags.GetInt("keys"));
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  auto key_of = [](int i) { return "tier-" + std::to_string(i); };
  for (int i = 0; i < keys; ++i) {
    (void)cluster.Put(key_of(i), MakePatternBuffer(size, i), *hot);
  }
  const uint32_t num_nodes = o.groups * o.s + o.d;
  auto cluster_memory = [&] {
    uint64_t total = 0;
    for (net::NodeId n = 0; n < num_nodes; ++n) {
      total += cluster.server(n).LiveBytes();
    }
    return total;
  };
  const uint64_t all_hot = cluster_memory();
  manager.Start();

  // Closed-loop Zipf gets whose head rotates through the key space, so the
  // manager has to both demote the cold tail and chase the hotspot.
  const auto period = static_cast<sim::SimTime>(
      flags.GetDouble("hotspot-period-ms") *
      static_cast<double>(sim::kMillisecond));
  const uint64_t shift = static_cast<uint64_t>(flags.GetInt("hotspot-shift"));
  workload::ZipfGenerator zipf(static_cast<uint64_t>(keys), 0.99);
  Rng rng(o.seed + 1);
  auto& client = cluster.client(0);
  client.ResetStats();
  const auto horizon = static_cast<sim::SimTime>(
      flags.GetDouble("seconds") * static_cast<double>(sim::kSecond));
  const sim::SimTime t0 = cluster.simulator().now();
  uint64_t gets = 0;
  while (cluster.simulator().now() - t0 < horizon) {
    const uint64_t offset = workload::HotspotOffset(
        cluster.simulator().now() - t0, period, shift);
    const uint64_t rank = (zipf.Next(rng) + offset) % keys;
    (void)cluster.Get(key_of(rank));
    ++gets;
  }
  cluster.RunFor(10 * sim::kMillisecond);  // drain queued moves + GC
  const uint64_t tiered = cluster_memory();
  const auto& mover = manager.mover();

  std::printf(
      "autotier %s <-> %s, %d keys x %zu B, hotspot rotating %llu keys "
      "every %.0f ms:\n",
      hot_desc->ToString().c_str(), cold_desc->ToString().c_str(), keys, size,
      static_cast<unsigned long long>(shift),
      flags.GetDouble("hotspot-period-ms"));
  std::printf("  %llu closed-loop gets, get p99 %.2f us\n",
              static_cast<unsigned long long>(gets),
              client.latencies().empty() ? -1.0
                                         : client.latencies().Percentile(99));
  std::printf("  all-%s memory %9.1f KiB -> tiered %9.1f KiB (%.1f%% saved)\n",
              hot_desc->ToString().c_str(), all_hot / 1024.0, tiered / 1024.0,
              100.0 * (1.0 - static_cast<double>(tiered) / all_hot));
  std::printf(
      "  moves: %llu scheduled, %llu completed, %llu retried, %llu aborted\n",
      static_cast<unsigned long long>(mover.scheduled()),
      static_cast<unsigned long long>(mover.completed()),
      static_cast<unsigned long long>(mover.retried()),
      static_cast<unsigned long long>(mover.aborted()));
  std::printf("  realized storage+ops cost: %.4f $/month (%s policy)\n",
              manager.RealizedStorageCost(),
              flags.GetBool("cost-objective") ? "cost-objective"
                                              : "threshold");
  manager.Stop();
  return 0;
}

// ringctl chaos | watch | report: plays a fault schedule against mixed
// traffic on one scheme and reports what the injector did, how the clients
// fared, and whether every acknowledged write survived byte-exactly. The
// schedule comes from --plan (the src/fault spec grammar, ';'-separated) or,
// when --plan is empty, from a seeded random generator — either way the run
// is deterministic and replayable from the command line that produced it.
//
// The three commands share one scenario and differ only in telemetry:
//   chaos   plain run, aggregate counters at the end
//   watch   time-series layer on; windowed SLI rows print as windows close
//   report  time-series + flight recorder on; post-mortem rendered after
//           the sweep (fault timeline, dips, recorder context)
enum class ChaosMode { kChaos, kWatch, kReport };

int RunChaos(FlagSet& flags, ChaosMode mode) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.spares = static_cast<uint32_t>(flags.GetInt("spares"));
  o.clients = std::max(1u, static_cast<uint32_t>(flags.GetInt("clients")));
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const uint32_t servers = o.s + o.d + o.spares;
  const uint64_t horizon =
      static_cast<uint64_t>(flags.GetDouble("seconds") * 1e9);
  const std::string spec = flags.GetString("plan");
  if (spec.empty()) {
    fault::ChaosShape shape;
    for (uint32_t n = 0; n < servers; ++n) {
      shape.faultable.push_back(n);
    }
    shape.num_nodes = servers + o.clients;
    shape.horizon_ns = horizon;
    shape.quiet_after_ns = horizon * 2 / 3;
    o.fault_plan = fault::RandomFaultPlan(o.seed * 31 + 7, shape);
  } else {
    auto plan = fault::ParseFaultPlan(spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "--plan: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    o.fault_plan = *plan;
  }
  o.fault_seed = o.seed;
  std::printf("fault plan:\n%s\n", o.fault_plan.ToString().c_str());

  RingCluster cluster(o);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableMetrics(true);
  uint64_t window_ns = 0;
  if (mode != ChaosMode::kChaos) {
    obs::TimeSeries::Options tso;
    tso.window_ns = std::max<uint64_t>(
        1, static_cast<uint64_t>(flags.GetDouble("window-us") * 1000.0));
    // Retain the whole horizon (plus quiesce slack) so the report never
    // loses early windows to ring eviction.
    tso.capacity_windows =
        std::max<size_t>(512, horizon / tso.window_ns + 64);
    hub.timeseries().Configure(tso);
    hub.timeseries().TrackSliDefaults();
    hub.EnableTimeSeries(true);
    window_ns = hub.timeseries().window_ns();
    if (mode == ChaosMode::kReport) {
      hub.EnableRecorder(true);
    }
  }
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }

  // Live SLI view: after each traffic step, print every window that has
  // fully closed since the last print. Availability is judged against the
  // median acked-op rate over the rows so far (same rule as the report).
  uint64_t printed_until = 0;  // exclusive window index
  bool sli_header = false;
  auto watch_tick = [&] {
    if (mode != ChaosMode::kWatch) {
      return;
    }
    const uint64_t closed = cluster.simulator().now() / window_ns;
    if (closed <= printed_until) {
      return;
    }
    obs::TimeSeries::SliOptions so;
    // Only fully-closed windows, and nothing past the traffic horizon — the
    // post-quiesce sweep offers no load, so its windows say nothing about
    // availability. until_ns is window-inclusive; back off 1 ns to keep the
    // still-open (and first post-horizon) window out.
    so.until_ns = std::min(closed * window_ns, horizon) - 1;
    for (const auto& row : hub.timeseries().Slis(so)) {
      if (row.window < printed_until) {
        continue;
      }
      if (!sli_header) {
        std::printf("      t_ms       ok      err    goodput/s    err%%     "
                    "p50_us     p99_us  avail\n");
        sli_header = true;
      }
      std::printf("  %8.1f %8" PRIu64 " %8" PRIu64
                  " %12.0f %6.1f%% %10.1f %10.1f  %s\n",
                  static_cast<double>(row.start_ns) / 1e6, row.ops_ok,
                  row.ops_err, row.goodput_per_sec, row.error_rate * 100.0,
                  static_cast<double>(row.p50_ns) / 1e3,
                  static_cast<double>(row.p99_ns) / 1e3,
                  row.available ? "ok" : "DIP");
    }
    printed_until = closed;
  };

  // Mixed open-loop traffic across the schedule's horizon; every ack is
  // remembered for the post-quiesce sweep.
  const int reps = static_cast<int>(flags.GetInt("reps"));
  const int nkeys = std::max(1, static_cast<int>(flags.GetInt("keys")));
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  Rng rng(o.seed * 7919 + 3);
  std::map<Key, std::map<Version, uint64_t>> acked;  // key -> version -> tag
  uint64_t puts_ok = 0, puts_failed = 0, gets_ok = 0, gets_failed = 0;
  int outstanding = 0;
  const sim::SimTime gap = horizon / std::max(1, reps);
  for (int op = 0; op < reps; ++op) {
    const uint32_t c = static_cast<uint32_t>(rng.NextBelow(o.clients));
    const Key key = "chaos-" + std::to_string(rng.NextBelow(nkeys));
    if (rng.NextBernoulli(0.5)) {
      const uint64_t tag = rng.NextU64();
      auto value = std::make_shared<Buffer>(MakePatternBuffer(size, tag));
      ++outstanding;
      cluster.client(c).Put(key, value, *g,
                            [&, key, tag](Status s, Version v) {
                              --outstanding;
                              if (s.ok()) {
                                ++puts_ok;
                                acked[key][v] = tag;
                              } else {
                                ++puts_failed;
                              }
                            });
    } else {
      ++outstanding;
      cluster.client(c).Get(key, [&](GetResult r) {
        --outstanding;
        r.status.ok() ? ++gets_ok : ++gets_failed;
      });
    }
    cluster.RunFor(gap);
    watch_tick();
  }
  for (int i = 0; i < 400 && outstanding > 0; ++i) {
    cluster.RunFor(sim::kMillisecond);
    watch_tick();
  }
  const auto& p = cluster.simulator().params();
  cluster.RunFor(2 * p.detection_window_ns() + 20 * sim::kMillisecond);
  watch_tick();

  // Post-quiesce sweep: every key with at least one acknowledged write must
  // read back bytes matching some acknowledged version.
  uint64_t sweep_ok = 0, sweep_bad = 0;
  for (const auto& [key, versions] : acked) {
    bool done = false;
    cluster.client(0).Get(key, [&, key](GetResult r) {
      done = true;
      if (!r.status.ok()) {
        ++sweep_bad;
        std::printf("  SWEEP VIOLATION: %s (%s)\n", key.c_str(),
                    r.status.ToString().c_str());
        return;
      }
      auto it = versions.find(r.version);
      if (it == versions.end()) {
        ++sweep_ok;  // version newer than any ack: an in-flight put landed
      } else if (*r.data == MakePatternBuffer(size, it->second)) {
        ++sweep_ok;
      } else {
        ++sweep_bad;
        std::printf("  SWEEP VIOLATION: %s (bytes mismatch at v%llu)\n",
                    key.c_str(), static_cast<unsigned long long>(r.version));
      }
    });
    for (int i = 0; i < 200 && !done; ++i) {
      cluster.RunFor(sim::kMillisecond);
    }
    if (!done) {
      ++sweep_bad;
      std::printf("  SWEEP VIOLATION: %s (get hung)\n", key.c_str());
    }
  }

  std::printf("traffic: %llu/%llu puts acked, %llu/%llu gets ok\n",
              static_cast<unsigned long long>(puts_ok),
              static_cast<unsigned long long>(puts_ok + puts_failed),
              static_cast<unsigned long long>(gets_ok),
              static_cast<unsigned long long>(gets_ok + gets_failed));
  std::printf("sweep:   %llu keys verified, %llu violations\n",
              static_cast<unsigned long long>(sweep_ok),
              static_cast<unsigned long long>(sweep_bad));
  const auto& f = cluster.runtime().injector()->counters();
  std::printf("injected: dropped %llu (+%llu partition), duplicated %llu, "
              "delayed %llu, deferred %llu\n"
              "          pauses %llu, crashes %llu, recoveries %llu, "
              "partitions %llu\n",
              static_cast<unsigned long long>(f.dropped),
              static_cast<unsigned long long>(f.partition_dropped),
              static_cast<unsigned long long>(f.duplicated),
              static_cast<unsigned long long>(f.delayed),
              static_cast<unsigned long long>(f.deferred),
              static_cast<unsigned long long>(f.pauses),
              static_cast<unsigned long long>(f.crashes),
              static_cast<unsigned long long>(f.recoveries),
              static_cast<unsigned long long>(f.partitions));
  if (mode == ChaosMode::kReport) {
    obs::ReportOptions ro;
    // The traffic stops at the horizon; windows after it would read as a
    // spurious never-recovered dip (until_ns is window-inclusive, so back
    // off 1 ns from the boundary).
    ro.sli.until_ns = horizon - 1;
    ro.dip_context_events =
        static_cast<size_t>(std::max(0, static_cast<int>(
            flags.GetInt("report-events"))));
    std::printf("\n%s",
                obs::PostMortemReport(hub.timeseries(), hub.recorder(), ro)
                    .c_str());
  }
  return sweep_bad == 0 ? 0 : 1;
}

// `ringctl cluster <status|add|remove>`: online elastic resize (§13).
void PrintClusterTable(RingCluster& cluster, uint32_t num_servers) {
  const net::NodeId leader = cluster.runtime().leader_node();
  const consensus::ClusterConfig& cfg =
      cluster.runtime().membership().ConfigView(leader);
  std::printf("cluster: epoch %llu, shape s=%u d=%u groups=%u%s\n",
              static_cast<unsigned long long>(cfg.epoch), cfg.s, cfg.d,
              cfg.groups,
              cfg.rebalancing() ? " (rebalancing from previous shape)" : "");
  std::printf("  %-5s %-6s %-8s %s\n", "node", "slot", "role", "state");
  for (net::NodeId n = 0; n < num_servers; ++n) {
    const int32_t slot = n < cfg.slot_of_node.size()
                             ? cfg.slot_of_node[n]
                             : consensus::kSpareSlot;
    const bool failed = n < cfg.failed.size() && cfg.failed[n];
    const char* role =
        failed ? "failed"
               : (slot == consensus::kSpareSlot
                      ? "spare"
                      : (static_cast<uint32_t>(slot) < cfg.s ? "coord"
                                                             : "redund"));
    char slot_buf[16];
    if (slot == consensus::kSpareSlot) {
      std::snprintf(slot_buf, sizeof(slot_buf), "-");
    } else {
      std::snprintf(slot_buf, sizeof(slot_buf), "%d", slot);
    }
    std::printf("  %-5u %-6s %-8s %s%s\n", n, slot_buf, role,
                cluster.server(n).serving() ? "serving" : "idle",
                n == leader ? " (config leader)" : "");
  }
}

int RunCluster(FlagSet& flags, const std::string& action) {
  auto desc = SchemeFromName(flags.GetString("scheme"));
  if (!desc.ok()) {
    std::fprintf(stderr, "%s\n", desc.status().ToString().c_str());
    return 1;
  }
  RingOptions o;
  o.s = static_cast<uint32_t>(flags.GetInt("shards"));
  o.d = static_cast<uint32_t>(flags.GetInt("redundant"));
  o.spares = static_cast<uint32_t>(flags.GetInt("spares"));
  o.clients = 2;
  o.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  o.params.wire_jitter_ns = 400;
  const uint32_t num_servers = o.s + o.d + o.spares;
  RingCluster cluster(o);
  auto g = cluster.CreateMemgest(*desc);
  if (!g.ok()) {
    std::fprintf(stderr, "createMemgest: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const int keys = std::max(1, static_cast<int>(flags.GetInt("keys")));
  const size_t size = static_cast<size_t>(flags.GetInt("size"));
  for (int i = 0; i < keys; ++i) {
    if (!cluster.Put("el-" + std::to_string(i), MakePatternBuffer(size, i), *g)
             .ok()) {
      std::fprintf(stderr, "load put %d failed\n", i);
      return 1;
    }
  }
  if (action == "status") {
    PrintClusterTable(cluster, num_servers);
    return 0;
  }

  const bool grow = action == "add";
  const int count = std::max(1, static_cast<int>(flags.GetInt("count")));
  for (int i = 0; i < count; ++i) {
    membership::RebalanceCoordinator coord(&cluster);
    const net::NodeId leader = cluster.runtime().leader_node();
    const consensus::ClusterConfig& cfg =
        cluster.runtime().membership().ConfigView(leader);
    const uint32_t from_s = cfg.s;
    bool accepted = false;
    if (grow) {
      const int32_t spare = cfg.FindSpare();
      if (spare < 0) {
        std::fprintf(stderr, "no live spare to add (shape s=%u)\n", cfg.s);
        return 1;
      }
      accepted = coord.AddServer(static_cast<net::NodeId>(spare));
    } else {
      if (cfg.s <= 1) {
        std::fprintf(stderr, "cannot shrink below one coordinator\n");
        return 1;
      }
      accepted = coord.RemoveServer(cfg.s - 1);
    }
    if (!accepted) {
      std::fprintf(stderr, "%s rejected (another transition in flight?)\n",
                   action.c_str());
      return 1;
    }
    // Probe reads against the population while the drain runs: the resize
    // must stay online.
    Samples during_us;
    int probe_seq = 0;
    while (coord.active()) {
      const Key key = "el-" + std::to_string(probe_seq++ % keys);
      const sim::SimTime start = cluster.simulator().now();
      cluster.client(1).Get(key, [&](GetResult r) {
        if (r.status.ok()) {
          during_us.Add(
              static_cast<double>(cluster.simulator().now() - start) / 1e3);
        }
      });
      cluster.RunFor(100 * sim::kMicrosecond);
    }
    if (coord.failed()) {
      std::fprintf(stderr, "%s %u -> %u FAILED to drain\n", action.c_str(),
                   from_s, grow ? from_s + 1 : from_s - 1);
      return 1;
    }
    const auto& st = coord.stats();
    std::printf(
        "%s: s %u -> %u drained in %.2f ms (%llu keys moved, %llu "
        "re-encoded, %.1f KiB shipped, %llu scan rounds); reads during "
        "drain p50 %.1f us p99 %.1f us\n",
        action.c_str(), from_s, grow ? from_s + 1 : from_s - 1,
        static_cast<double>(st.end_ns - st.start_ns) / 1e6,
        static_cast<unsigned long long>(st.keys_moved),
        static_cast<unsigned long long>(st.keys_reencoded),
        st.bytes_moved / 1024.0,
        static_cast<unsigned long long>(st.scan_rounds),
        during_us.empty() ? 0.0 : during_us.Percentile(50),
        during_us.empty() ? 0.0 : during_us.Percentile(99));
    cluster.RunFor(2 * sim::kMillisecond);  // let stragglers clear
  }

  // Read back every key: an online resize must not lose or corrupt data.
  uint64_t bad = 0;
  for (int i = 0; i < keys; ++i) {
    auto got = cluster.Get("el-" + std::to_string(i));
    if (!got.ok() || *got != MakePatternBuffer(size, i)) {
      ++bad;
    }
  }
  std::printf("verify: %d keys read back, %llu mismatches\n", keys,
              static_cast<unsigned long long>(bad));
  PrintClusterTable(cluster, num_servers);
  return bad == 0 ? 0 : 1;
}

int RunSchemes(FlagSet& flags) {
  const uint32_t s = static_cast<uint32_t>(flags.GetInt("shards"));
  const uint32_t d = static_cast<uint32_t>(flags.GetInt("redundant"));
  // §3.3: "the total number of different erasure coded storage schemes with
  // given s equals s(s-1)/2" (k in 2..s, m in 1..min(k-1, d)) — plus the
  // replication family.
  std::printf("memgests available on an s=%u, d=%u group:\n", s, d);
  std::printf("  replication: Rep(1..%u)\n", s + d);
  int count = 0;
  std::printf("  erasure coded:");
  for (uint32_t k = 2; k <= s; ++k) {
    for (uint32_t m = 1; m < k && m <= d; ++m) {
      std::printf(" SRS(%u,%u,%u)", k, m, s);
      ++count;
    }
  }
  std::printf("\n  -> %d erasure-coded schemes (s(s-1)/2 = %u without the "
              "m <= d bound), %u replicated\n",
              count, s * (s - 1) / 2, s + d);
  return 0;
}

// `ringctl mc`: explore a preset scenario's schedule space, or replay a
// minimized counterexample spec.
//
//   ringctl mc --scenario=wedged-write                    -> exit 3, spec out
//   ringctl mc --scenario=wedged-write --inject-bug=false -> exit 0 (clean)
//   ringctl mc --replay=counterexample.mcspec             -> byte-identity
//
// Exit codes: 0 = clean space / replay matched the spec's expectations,
// 3 = violation found (minimized spec written to --spec-out or stdout),
// 1 = replay mismatch, 2 = bad flags. CI runs the clean legs as hard gates
// and uploads the spec artifact when one unexpectedly finds a violation.
int RunMcReplay(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "mc: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  const Result<mc::ScheduleSpec> spec = mc::ScheduleSpec::Parse(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "mc: %s\n", spec.status().message().c_str());
    return 2;
  }
  const mc::TraceResult run = mc::Replay(*spec);
  std::printf("replay: %llu steps, schedule 0x%016llx, digest 0x%016llx\n",
              static_cast<unsigned long long>(run.steps),
              static_cast<unsigned long long>(run.schedule_hash),
              static_cast<unsigned long long>(run.final_digest));
  if (run.diverged) {
    std::printf("FAIL: schedule diverged from the spec's decisions\n");
    return 1;
  }
  if (run.violation != spec->expect_violation) {
    std::printf("FAIL: violation '%s' (%s), spec expects '%s'\n",
                run.violation.c_str(), run.violation_detail.c_str(),
                spec->expect_violation.c_str());
    return 1;
  }
  if (spec->expect_digest != 0 && run.final_digest != spec->expect_digest) {
    std::printf("FAIL: digest 0x%016llx, spec expects 0x%016llx\n",
                static_cast<unsigned long long>(run.final_digest),
                static_cast<unsigned long long>(spec->expect_digest));
    return 1;
  }
  if (!run.violation.empty()) {
    std::printf("violation reproduced: %s (%s)\n", run.violation.c_str(),
                run.violation_detail.c_str());
  }
  std::printf("OK: replay matches the spec\n");
  return 0;
}

int RunMc(FlagSet& flags) {
  const std::string replay = flags.GetString("replay");
  if (!replay.empty()) {
    return RunMcReplay(replay);
  }
  const bool inject = flags.GetBool("inject-bug");
  const Result<mc::McScenario> sc =
      mc::PresetScenario(flags.GetString("scenario"), inject);
  if (!sc.ok()) {
    std::fprintf(stderr, "mc: %s\n", sc.status().message().c_str());
    return 2;
  }
  mc::ExplorerOptions opts;
  opts.max_traces = static_cast<uint64_t>(flags.GetInt("max-traces"));
  opts.dpor = !flags.GetBool("naive");
  opts.sleep_sets = opts.dpor;
  opts.state_dedup = opts.dpor;
  std::printf("mc: scenario '%s' (%s), bug %s, budget %llu traces, %s\n",
              sc->name.c_str(), sc->description.c_str(),
              inject ? "injected" : "off",
              static_cast<unsigned long long>(opts.max_traces),
              opts.dpor ? "dpor+sleep" : "naive enumeration");
  const mc::ExploreResult res = mc::Explorer(sc->config, opts).Explore();
  std::printf("mc: %llu traces over %llu fault skeletons, %llu deduped, "
              "%zu distinct final states\n",
              static_cast<unsigned long long>(res.traces),
              static_cast<unsigned long long>(res.skeletons),
              static_cast<unsigned long long>(res.dedup_hits),
              res.fingerprints.size());
  if (!res.found) {
    std::printf("mc: no violation found\n");
    return 0;
  }
  std::printf("mc: VIOLATION %s: %s\n", res.violation.c_str(),
              res.violation_detail.c_str());
  const std::string text = res.counterexample.ToString();
  const std::string out = flags.GetString("spec-out");
  if (out.empty()) {
    std::printf("%s", text.c_str());
  } else {
    std::FILE* f = std::fopen(out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "mc: cannot write '%s'\n", out.c_str());
      return 2;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("mc: minimized spec written to %s (replay with "
                "`ringctl mc --replay=%s`)\n",
                out.c_str(), out.c_str());
  }
  return 3;
}

int Main(int argc, char** argv) {
  FlagSet flags(
      "ringctl "
      "<latency|throughput|recover|reliability|schemes|stats|simstats|trace|"
      "autotier|chaos|watch|report|mc|cluster <status|add|remove>>");
  flags.DefineString("scheme", "rep3", "storage scheme: repN or srsKM")
      .DefineString("cold-scheme", "srs32",
                    "cold-tier scheme for autotier: repN or srsKM")
      .DefineString("mode", "", "command (alias for the positional argument)")
      .DefineString("plan", "",
                    "chaos: fault schedule spec (';'-separated directives, "
                    "see src/fault/fault.h; empty = seeded random plan)")
      .DefineString("trace_out", "",
                    "write a Chrome trace_event JSON file (latency/trace)")
      .DefineString("log", "",
                    "log level: error, warn, info or debug (default off); "
                    "lines carry simulated time + node")
      .DefineInt("shards", 3, "coordinator shards per group (s)")
      .DefineInt("redundant", 2, "redundant slots (d)")
      .DefineInt("groups", 1, "rotated memgest groups (1 = paper layout)")
      .DefineInt("clients", 1, "load-generating clients")
      .DefineInt("size", 1024, "object size in bytes")
      .DefineInt("reps", 1000, "closed-loop repetitions")
      .DefineInt("keys", 2000, "distinct keys in the workload")
      .DefineInt("entries", 2000, "objects on the victim shard (recover)")
      .DefineInt("victim", 1, "node to kill (recover)")
      .DefineInt("spares", 2, "idle spare nodes provisioned (cluster, chaos)")
      .DefineInt("count", 1, "transitions to perform (cluster add/remove)")
      .DefineInt("seed", 7, "deterministic simulation seed")
      .DefineInt("cores-per-node", 1,
                 "CPU shards per server node (simstats; >1 shows the "
                 "per-key shard-homing spread)")
      .DefineInt("k", 3, "SRS data blocks (reliability)")
      .DefineInt("m", 2, "SRS parity blocks (reliability)")
      .DefineInt("stretch", 0, "SRS stretch s (0 = k, i.e. plain RS)")
      .DefineDouble("rate", 200000, "offered load per client, req/s")
      .DefineDouble("seconds", 1.0, "measurement window, simulated seconds")
      .DefineDouble("get-fraction", 0.0, "fraction of gets in the mix")
      .DefineDouble("lambda", 10.0, "node failure rate per year")
      .DefineDouble("dataset-gib", 600.0, "protected dataset size")
      .DefineDouble("epoch-ms", 5.0, "autotier temperature epoch, ms")
      .DefineDouble("moves-per-sec", 4000.0,
                    "background move rate limit (autotier)")
      .DefineDouble("hot-enter", 8.0, "accesses/epoch to promote (autotier)")
      .DefineDouble("cold-enter", 2.0, "accesses/epoch to demote (autotier)")
      .DefineDouble("hotspot-period-ms", 30.0,
                    "hotspot rotation period, ms (autotier; 0 = static)")
      .DefineInt("hotspot-shift", 80,
                 "keys the hotspot shifts by each period (autotier)")
      .DefineBool("cost-objective", false,
                  "price placements with the cloud cost model instead of "
                  "temperature thresholds (autotier)")
      .DefineDouble("ops-per-temp", 1e6,
                    "monthly ops per unit temperature for pricing "
                    "(autotier --cost-objective; lower values make storage "
                    "rent dominate)")
      .DefineBool("calibrate", false,
                  "measure the host's GF kernel throughput and derive "
                  "gf_byte_ns/decode_byte_ns before simulating "
                  "(latency/throughput/recover)")
      .DefineBool("json", false, "machine-readable output (calibrate, stats)")
      .DefineBool("prom", false,
                  "Prometheus text exposition instead of the summary (stats)")
      .DefineDouble("window-us", 1000.0,
                    "SLI window width in simulated microseconds "
                    "(watch/report)")
      .DefineInt("report-events", 12,
                 "flight-recorder events shown around each availability dip "
                 "(report)")
      .DefineInt("block", 65536,
                 "region size in bytes timed by calibrate (the paper's "
                 "64 KiB recovery block)")
      .DefineBool("zipfian", true, "Zipfian (vs uniform) key popularity")
      .DefineBool("light-clients", true,
                  "lightweight load generators (Fig. 9 style)")
      .DefineString("scenario", "wedged-write",
                    "mc: preset schedule space (wedged-write, "
                    "single-source-recovery, gc-revalidate)")
      .DefineBool("inject-bug", true,
                  "mc: re-introduce the scenario's seed-era bug; with "
                  "--inject-bug=false the same space must explore clean")
      .DefineString("replay", "",
                    "mc: replay a minimized counterexample spec file and "
                    "verify byte-identity instead of exploring")
      .DefineString("spec-out", "",
                    "mc: write the minimized counterexample spec here "
                    "(default: stdout)")
      .DefineInt("max-traces", 5000, "mc: exploration budget in traces")
      .DefineBool("naive", false,
                  "mc: full enumeration instead of DPOR + sleep sets");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const std::string log = flags.GetString("log");
  if (log == "error") {
    SetLogLevel(LogLevel::kError);
  } else if (log == "warn") {
    SetLogLevel(LogLevel::kWarn);
  } else if (log == "info") {
    SetLogLevel(LogLevel::kInfo);
  } else if (log == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (!log.empty()) {
    std::fprintf(stderr, "unknown --log level '%s'\n", log.c_str());
    return 2;
  }
  if (flags.positional().empty() && flags.GetString("mode").empty()) {
    std::fprintf(stderr, "%s", flags.Usage().c_str());
    return 2;
  }
  const std::string command = flags.positional().empty()
                                  ? flags.GetString("mode")
                                  : flags.positional()[0];
  // `cluster` takes a sub-action as a second positional; every other
  // command takes exactly one.
  if (flags.positional().size() > (command == "cluster" ? 2u : 1u)) {
    std::fprintf(stderr, "%s", flags.Usage().c_str());
    return 2;
  }
  if (command == "cluster") {
    const std::string action = flags.positional().size() > 1
                                   ? flags.positional()[1]
                                   : std::string("status");
    if (action != "status" && action != "add" && action != "remove") {
      std::fprintf(stderr,
                   "cluster action must be status, add or remove (got '%s')\n",
                   action.c_str());
      return 2;
    }
    return RunCluster(flags, action);
  }
  if (command == "latency") {
    return RunLatency(flags);
  }
  if (command == "throughput") {
    return RunThroughput(flags);
  }
  if (command == "recover") {
    return RunRecover(flags);
  }
  if (command == "reliability") {
    return RunReliability(flags);
  }
  if (command == "schemes") {
    return RunSchemes(flags);
  }
  if (command == "stats") {
    return RunStats(flags);
  }
  if (command == "simstats") {
    return RunSimstats(flags);
  }
  if (command == "trace") {
    return RunTrace(flags);
  }
  if (command == "autotier") {
    return RunAutotier(flags);
  }
  if (command == "calibrate") {
    return RunCalibrate(flags);
  }
  if (command == "chaos") {
    return RunChaos(flags, ChaosMode::kChaos);
  }
  if (command == "watch") {
    return RunChaos(flags, ChaosMode::kWatch);
  }
  if (command == "report") {
    return RunChaos(flags, ChaosMode::kReport);
  }
  if (command == "mc") {
    return RunMc(flags);
  }
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(),
               flags.Usage().c_str());
  return 2;
}

}  // namespace
}  // namespace ring

int main(int argc, char** argv) { return ring::Main(argc, argv); }
