#!/usr/bin/env bash
# Tier-1 gate: builds the tree and runs the test suite normally, then again
# under AddressSanitizer + UndefinedBehaviorSanitizer (RING_SANITIZE, see the
# top-level CMakeLists.txt).
#
#   tools/check.sh            # plain + asan,ubsan
#   tools/check.sh --fast     # plain build + tests only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

echo "== tier-1: plain build + ctest =="
run_suite build

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== tier-1: asan,ubsan build + ctest =="
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
run_suite build-sanitize -DRING_SANITIZE=address,undefined

echo "check.sh: all suites passed"
