#!/usr/bin/env bash
# Tier-1 gate: builds the tree and runs the test suite normally, then the
# analysis gate (ring-lint + clang-tidy), then again under AddressSanitizer +
# UndefinedBehaviorSanitizer with leak detection on, a ThreadSanitizer subset
# (the coding/sim kernels a future threaded runtime would touch first), and a
# scalar-forced coding build (-DRING_FORCE_SCALAR=ON) covering the portable
# GF(2^8) kernels that SIMD hosts would otherwise never execute. The coding
# bench smoke runs in every built leg, including the scalar one.
#
#   tools/check.sh            # everything
#   tools/check.sh --fast     # plain build + ctest + bench smoke only
#   tools/check.sh --lint     # ring-lint + clang-tidy only
#   tools/check.sh --chaos    # chaos harness: fuzz seeds plain + ASan,
#                             # availability bench smoke
#   tools/check.sh --obs      # telemetry pipeline: zero-perturbation gate
#                             # (determinism with timeseries+recorder on),
#                             # obs unit tests, ringctl report/stats smoke
#   tools/check.sh --membership  # elastic membership: unit + chaos seeds
#                             # plain and ASan, rebalance bench, ringctl
#                             # cluster smoke
#   tools/check.sh --perf     # simulator fast path: scheduler/pool/shard
#                             # equivalence tests, sim_core quick bench
#                             # (calendar+pool vs legacy heap), simstats
#                             # smoke
#   tools/check.sh --mc       # schedule-space model checker: mc_test (DPOR,
#                             # shrinker, replay), then per known-bug
#                             # scenario: rediscover with the bug injected
#                             # (exit 3 + minimized spec), replay the spec
#                             # byte-identically, and sweep clean without it
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-}"

# ccache (when installed) transparently accelerates every rebuilt leg.
LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "${LAUNCHER_ARGS[@]}" "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

bench_smoke() {
  "$1/bench/micro_coding" --benchmark_filter='BM_GfMulAddRegion/1024$' \
    --benchmark_min_time=0.01
}

run_lint() {
  echo "== analysis: ring-lint determinism hygiene =="
  cmake -B build -S . "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build -j "${JOBS}" --target ring-lint
  ./build/tools/ring-lint .

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== analysis: clang-tidy (all of src/) =="
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      "${LAUNCHER_ARGS[@]}" >/dev/null
    find src -name '*.cc' -print0 \
      | xargs -0 clang-tidy -p build --quiet
  elif [[ -n "${RING_REQUIRE_CLANG_TIDY:-}" ]]; then
    echo "clang-tidy required (RING_REQUIRE_CLANG_TIDY set) but not found" >&2
    exit 1
  else
    echo "clang-tidy not installed; skipping (checks listed in .clang-tidy)"
  fi
}

if [[ "${MODE}" == "--lint" ]]; then
  run_lint
  echo "check.sh: lint passed"
  exit 0
fi

if [[ "${MODE}" == "--chaos" ]]; then
  echo "== chaos: fuzz seeds (plain) =="
  cmake -B build -S . "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build -j "${JOBS}" --target chaos_fuzz_test chaos_availability
  ./build/tests/chaos_fuzz_test
  echo "== chaos: availability bench smoke =="
  ./build/bench/chaos_availability
  echo "== chaos: fuzz seeds (asan,ubsan) =="
  cmake -B build-sanitize -S . -DRING_SANITIZE=address,undefined \
    "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build-sanitize -j "${JOBS}" --target chaos_fuzz_test
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ./build-sanitize/tests/chaos_fuzz_test
  echo "check.sh: chaos suite passed"
  exit 0
fi

if [[ "${MODE}" == "--membership" ]]; then
  echo "== membership: build elastic targets =="
  cmake -B build -S . "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build -j "${JOBS}" \
    --target membership_test chaos_fuzz_test rebalance_cost ringctl
  echo "== membership: unit + property tests =="
  ./build/tests/membership_test
  echo "== membership: chaos seeds (plain) =="
  ./build/tests/chaos_fuzz_test --gtest_filter='*MembershipChaos*'
  echo "== membership: ringctl cluster add/remove smoke =="
  ./build/tools/ringctl cluster add --scheme=srs32 --keys=200 >/dev/null
  ./build/tools/ringctl cluster remove --scheme=rep3 --keys=200 >/dev/null
  echo "== membership: rebalance cost bench =="
  ./build/bench/rebalance_cost /tmp/BENCH_rebalance.json >/dev/null
  echo "== membership: unit + chaos seeds (asan,ubsan) =="
  cmake -B build-sanitize -S . -DRING_SANITIZE=address,undefined \
    "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build-sanitize -j "${JOBS}" \
    --target membership_test chaos_fuzz_test
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ./build-sanitize/tests/membership_test
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ./build-sanitize/tests/chaos_fuzz_test \
    --gtest_filter='*MembershipChaos*'
  echo "check.sh: membership suite passed"
  exit 0
fi

if [[ "${MODE}" == "--perf" ]]; then
  echo "== perf: build simulator fast-path targets =="
  cmake -B build -S . "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build -j "${JOBS}" \
    --target sim_test determinism_test sim_core ringctl
  echo "== perf: scheduler/pool/shard unit tests =="
  ./build/tests/sim_test
  echo "== perf: cross-scheduler byte-identity gate =="
  ./build/tests/determinism_test
  echo "== perf: sim_core quick bench (calendar+pool vs legacy heap) =="
  ./build/bench/sim_core --quick | tee /tmp/BENCH_sim.json
  echo "== perf: ringctl simstats smoke =="
  ./build/tools/ringctl simstats --reps=200 --cores-per-node=2 >/dev/null
  echo "check.sh: perf suite passed"
  exit 0
fi

if [[ "${MODE}" == "--mc" ]]; then
  echo "== mc: build model-checker targets =="
  cmake -B build -S . "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build -j "${JOBS}" --target mc_test ringctl
  echo "== mc: unit + regression tests (DPOR, shrinker, replay) =="
  ./build/tests/mc_test
  SPEC_DIR="${MC_SPEC_DIR:-/tmp/ring_mc_specs}"
  mkdir -p "${SPEC_DIR}"
  for sc in wedged-write single-source-recovery gc-revalidate; do
    echo "== mc: rediscover ${sc} (bug injected, expect exit 3) =="
    spec="${SPEC_DIR}/${sc}.spec"
    rc=0
    ./build/tools/ringctl mc --scenario="${sc}" --spec-out="${spec}" || rc=$?
    if [[ "${rc}" -ne 3 ]]; then
      echo "mc: ${sc}: expected exit 3 (violation found), got ${rc}" >&2
      exit 1
    fi
    echo "== mc: replay ${sc} minimized spec (byte-identity) =="
    ./build/tools/ringctl mc --replay="${spec}"
    echo "== mc: sweep ${sc} clean (bug disabled, expect exit 0) =="
    ./build/tools/ringctl mc --scenario="${sc}" --inject-bug=false
  done
  echo "check.sh: mc suite passed"
  exit 0
fi

if [[ "${MODE}" == "--obs" ]]; then
  echo "== obs: build telemetry targets =="
  cmake -B build -S . "${LAUNCHER_ARGS[@]}" >/dev/null
  cmake --build build -j "${JOBS}" \
    --target obs_test determinism_test ringctl chaos_availability
  echo "== obs: unit tests (timeseries, recorder, export, report) =="
  ./build/tests/obs_test
  echo "== obs: zero-perturbation gate (telemetry on == telemetry off) =="
  ./build/tests/determinism_test \
    --gtest_filter='DeterminismTest.TelemetryPipelineDoesNotPerturbTheSchedule'
  echo "== obs: ringctl stats --json/--prom smoke =="
  ./build/tools/ringctl stats --reps=50 --json >/dev/null
  ./build/tools/ringctl stats --reps=50 --prom >/dev/null
  echo "== obs: ringctl report post-mortem smoke =="
  ./build/tools/ringctl report --scheme=rep3 --seed=5 --seconds=0.08 \
    --reps=400 --plan="crash node=1 at=5ms recover=30ms" \
    | grep -q "== availability dips =="
  echo "== obs: windowed chaos availability bench =="
  ./build/bench/chaos_availability /tmp/BENCH_chaos.json >/dev/null
  echo "check.sh: obs suite passed"
  exit 0
fi

echo "== tier-1: plain build + ctest =="
run_suite build

echo "== coding bench smoke (plain) =="
bench_smoke build

if [[ "${MODE}" == "--fast" ]]; then
  echo "check.sh: fast suite passed"
  exit 0
fi

run_lint

echo "== tier-1: asan,ubsan build + ctest (leak detection on) =="
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
run_suite build-sanitize -DRING_SANITIZE=address,undefined

echo "== tsan build: coding + sim subset =="
cmake -B build-tsan -S . -DRING_SANITIZE=thread "${LAUNCHER_ARGS[@]}"
cmake --build build-tsan -j "${JOBS}" \
  --target gf_test rs_test srs_test sim_test micro_coding
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
  -R 'gf_test|rs_test|srs_test|sim_test'
bench_smoke build-tsan

echo "== coding: scalar-forced build (RING_FORCE_SCALAR=ON) =="
cmake -B build-scalar -S . -DRING_FORCE_SCALAR=ON "${LAUNCHER_ARGS[@]}"
cmake --build build-scalar -j "${JOBS}" \
  --target gf_test rs_test srs_test ring_test micro_coding
ctest --test-dir build-scalar --output-on-failure -j "${JOBS}" \
  -R 'gf_test|rs_test|srs_test|ring_test'
bench_smoke build-scalar

echo "check.sh: all suites passed"
