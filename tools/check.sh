#!/usr/bin/env bash
# Tier-1 gate: builds the tree and runs the test suite normally, then again
# under AddressSanitizer + UndefinedBehaviorSanitizer (RING_SANITIZE, see the
# top-level CMakeLists.txt), then a scalar-forced coding build
# (-DRING_FORCE_SCALAR=ON) covering the portable GF(2^8) kernels that SIMD
# hosts would otherwise never execute.
#
#   tools/check.sh            # plain + asan,ubsan + scalar-forced
#   tools/check.sh --fast     # plain build + tests only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

echo "== tier-1: plain build + ctest =="
run_suite build

echo "== coding bench smoke =="
./build/bench/micro_coding --benchmark_filter='BM_GfMulAddRegion/1024$' \
  --benchmark_min_time=0.01

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== tier-1: asan,ubsan build + ctest =="
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
run_suite build-sanitize -DRING_SANITIZE=address,undefined

echo "== coding: scalar-forced build (RING_FORCE_SCALAR=ON) =="
cmake -B build-scalar -S . -DRING_FORCE_SCALAR=ON
cmake --build build-scalar -j "${JOBS}" \
  --target gf_test rs_test srs_test ring_test micro_coding
ctest --test-dir build-scalar --output-on-failure -j "${JOBS}" \
  -R 'gf_test|rs_test|srs_test|ring_test'
./build-scalar/bench/micro_coding --benchmark_filter='BM_GfMulAddRegion/1024$' \
  --benchmark_min_time=0.01

echo "check.sh: all suites passed"
