// Chaos testing: randomized fault plans (drops, duplicates, delays,
// reorders, partitions, gray-failure pauses, crash-recovery) injected under
// random traffic, with the consistency oracles of consistency_fuzz_test:
//   - integrity: a read of a known version returns its bytes exactly,
//   - monotonicity: reliable keys never travel back in time,
//   - committed data: after the plan quiesces and the cluster heals, every
//     acked write to a reliable memgest reads back byte-exactly with
//     version >= the acked one (read-your-writes),
//   - Rep(1) honesty: unreliable keys either return the exact acked bytes
//     or a clean error — never stale/corrupt data, never a hang.
// Every run is deterministic in (seed): replaying the same seed must
// produce byte-identical metrics, traffic outcomes, and fault counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/fault/fault.h"
#include "src/membership/rebalance.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

// On an oracle failure, the plan that provoked it and the flight-recorder
// tail are the debugging state that matters: dump both to stderr and to a
// $TEST_TMPDIR artifact (cwd when unset) so CI retains them.
void DumpFailureArtifact(uint64_t seed, const fault::FaultPlan& plan,
                         const obs::FlightRecorder& recorder) {
  std::ostringstream os;
  const std::vector<obs::RecEvent> tail = recorder.Tail(64);
  os << "chaos_fuzz oracle failure, seed=" << seed << "\n"
     << "replay: ctest -R ChaosFuzzTest --gtest_filter='*seed" << seed
     << "*' (or RunChaos(" << seed << "))\n"
     << "fault plan:\n"
     << plan.ToString() << "flight recorder tail (last " << tail.size()
     << " of " << recorder.total_recorded() << " events):\n"
     << obs::FlightRecorder::Format(tail);
  const std::string text = os.str();
  std::fputs(text.c_str(), stderr);
  const char* dir = std::getenv("TEST_TMPDIR");
  const std::string path = std::string(dir != nullptr ? dir : ".") +
                           "/chaos_fuzz_seed" + std::to_string(seed) + ".txt";
  if (FILE* f = std::fopen(path.c_str(), "w"); f != nullptr) {
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "artifact: %s\n", path.c_str());
  }
}

Buffer EncodeValue(const Key& key, uint64_t nonce, size_t size) {
  Buffer out = MakePatternBuffer(size, HashKey(key) ^ nonce);
  const std::string tag = key + "#" + std::to_string(nonce) + ";";
  for (size_t i = 0; i < tag.size() && i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(tag[i]);
  }
  return out;
}

// Everything observable a chaos run produced. Two runs of the same seed
// must compare equal, field for field.
struct ChaosDigest {
  std::string metrics;
  std::string outcomes;  // per-op completion log, in completion order
  uint64_t faults_dropped = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_deferred = 0;
  uint64_t crashes = 0;
  uint64_t oracle_violations = 0;

  bool operator==(const ChaosDigest& o) const {
    return metrics == o.metrics && outcomes == o.outcomes &&
           faults_dropped == o.faults_dropped &&
           faults_duplicated == o.faults_duplicated &&
           faults_deferred == o.faults_deferred && crashes == o.crashes &&
           oracle_violations == o.oracle_violations;
  }
};

// One full chaos run: random plan + random traffic + oracles + final sweep.
ChaosDigest RunChaos(uint64_t seed) {
  RingOptions options;
  options.s = 3;
  options.d = 2;
  options.spares = 2;
  options.clients = 2;
  options.seed = seed;
  const uint32_t servers = options.s + options.d + options.spares;

  fault::ChaosShape shape;
  for (uint32_t n = 0; n < servers; ++n) {
    shape.faultable.push_back(n);
  }
  shape.num_nodes = servers + options.clients;
  shape.horizon_ns = 60 * sim::kMillisecond;
  shape.quiet_after_ns = 40 * sim::kMillisecond;
  shape.link_faults = 4;
  shape.node_events = 2;
  options.fault_plan = fault::RandomFaultPlan(seed * 31 + 7, shape);
  options.fault_seed = seed;

  RingCluster cluster(options);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableMetrics(true);
  // Flight recorder on for every run: zero-perturbation (determinism_test
  // proves it), and on an oracle failure its tail is the post-mortem.
  hub.EnableRecorder(true);
  const auto& p = cluster.simulator().params();

  const MemgestId rep1 =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1));
  const std::vector<MemgestId> reliable = {
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3)),
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2)),
  };

  Rng rng(seed * 7919 + 3);
  std::ostringstream outcomes;
  uint64_t violations = 0;

  // Reliable-key ground truth, from completion callbacks only.
  struct KeyState {
    std::map<Version, Buffer> acked;  // version -> bytes
    Version highest_read = 0;
  };
  std::map<Key, KeyState> truth;
  // Rep(1) keys are written once each: a read returns those bytes or a
  // clean error, nothing else.
  std::map<Key, Buffer> rep1_truth;

  // `floor` is the highest version some get had *completed* with when this
  // get was issued: a later-issued read may never travel below it. Reads
  // whose lifetimes overlap are allowed to complete in either order (a
  // delayed reply carries the version that was current when it was served).
  auto check_reliable_read = [&](const Key& key, Version floor,
                                 const GetResult& r) {
    if (!r.status.ok()) {
      return;  // clean failure under faults is legal mid-chaos
    }
    KeyState& st = truth[key];
    auto it = st.acked.find(r.version);
    if (it != st.acked.end() && *r.data != it->second) {
      ++violations;
      ADD_FAILURE() << "corrupt read of " << key << " v" << r.version
                    << " seed=" << seed;
    }
    if (r.version < floor) {
      ++violations;
      ADD_FAILURE() << "time travel on " << key << ": v" << r.version
                    << " after v" << floor << " seed=" << seed;
    }
    st.highest_read = std::max(st.highest_read, r.version);
  };

  const int kKeys = 10;
  uint64_t next_nonce = 1;
  int outstanding = 0;
  const int kOps = 400;
  for (int op = 0; op < kOps; ++op) {
    const uint32_t client = static_cast<uint32_t>(rng.NextBelow(2));
    const double dice = rng.NextDouble();
    if (dice < 0.06) {
      // Fire-once Rep(1) key: unreliable by design.
      const Key key = "r1-" + std::to_string(next_nonce);
      Buffer value = EncodeValue(key, next_nonce, 16 + rng.NextBelow(500));
      ++next_nonce;
      ++outstanding;
      cluster.client(client).Put(
          key, std::make_shared<Buffer>(value), rep1,
          [&, key, value](Status s, Version) {
            --outstanding;
            outcomes << "p1 " << key << " " << StatusCodeName(s.code())
                     << "\n";
            if (s.ok()) {
              rep1_truth[key] = value;
            }
          });
    } else if (dice < 0.40) {
      const Key key = "ck-" + std::to_string(rng.NextBelow(kKeys));
      const uint64_t nonce = next_nonce++;
      Buffer value = EncodeValue(key, nonce, 16 + rng.NextBelow(2000));
      const MemgestId g = reliable[rng.NextBelow(reliable.size())];
      ++outstanding;
      cluster.client(client).Put(
          key, std::make_shared<Buffer>(value), g,
          [&, key, value](Status s, Version v) {
            --outstanding;
            outcomes << "put " << key << " " << StatusCodeName(s.code())
                     << " v" << v << "\n";
            if (s.ok()) {
              auto [it, fresh] = truth[key].acked.emplace(v, value);
              if (!fresh && it->second != value) {
                ++violations;
                ADD_FAILURE() << "version reuse on " << key << " v" << v
                              << " seed=" << seed;
              }
            }
          });
    } else if (dice < 0.85) {
      const Key key = rng.NextBernoulli(0.15) && !rep1_truth.empty()
                          ? rep1_truth.rbegin()->first
                          : "ck-" + std::to_string(rng.NextBelow(kKeys));
      ++outstanding;
      const Version floor = truth[key].highest_read;
      cluster.client(client).Get(key, [&, key, floor](GetResult r) {
        --outstanding;
        outcomes << "get " << key << " " << StatusCodeName(r.status.code())
                 << "\n";
        auto r1 = rep1_truth.find(key);
        if (r1 != rep1_truth.end()) {
          // Rep(1): exact bytes or clean error, never stale garbage.
          if (r.status.ok() && *r.data != r1->second) {
            ++violations;
            ADD_FAILURE() << "stale/corrupt rep1 read of " << key
                          << " seed=" << seed;
          }
        } else {
          check_reliable_read(key, floor, r);
        }
      });
    } else {
      const Key key = "ck-" + std::to_string(rng.NextBelow(kKeys));
      const MemgestId g = reliable[rng.NextBelow(reliable.size())];
      ++outstanding;
      cluster.client(client).Move(key, g, [&, key](Status s, Version) {
        --outstanding;
        outcomes << "mov " << key << " " << StatusCodeName(s.code()) << "\n";
      });
    }
    if (rng.NextBernoulli(0.6)) {
      cluster.RunFor(rng.NextBelow(200) * sim::kMicrosecond);
    }
  }
  // Drain all traffic (bounded: the retry budget turns every wedged op into
  // a clean kUnavailable), then run past the plan's quiet point plus a
  // detection + recovery window so crashed nodes have rejoined.
  EXPECT_TRUE(cluster.RunUntilDone([&] { return outstanding == 0; }))
      << "seed=" << seed << ": an operation hung past the retry budget";
  const sim::SimTime settle = shape.quiet_after_ns +
                              2 * p.detection_window_ns() +
                              30 * sim::kMillisecond;
  if (cluster.simulator().now() < settle) {
    cluster.RunFor(settle - cluster.simulator().now());
  }

  // Committed-data / read-your-writes sweep on the healed cluster.
  for (const auto& [key, st] : truth) {
    if (st.acked.empty()) {
      continue;
    }
    bool done = false;
    GetResult r;
    cluster.client(0).Get(key, [&](GetResult got) {
      r = std::move(got);
      done = true;
    });
    EXPECT_TRUE(cluster.RunUntilDone([&] { return done; })) << key;
    outcomes << "swp " << key << " " << StatusCodeName(r.status.code())
             << "\n";
    if (!r.status.ok()) {
      ++violations;
      ADD_FAILURE() << "committed reliable key " << key
                    << " unreadable after heal: " << r.status
                    << " seed=" << seed;
      continue;
    }
    check_reliable_read(key, st.highest_read, r);
    if (r.version < st.acked.rbegin()->first) {
      ++violations;
      ADD_FAILURE() << "read-your-writes violated on " << key << ": v"
                    << r.version << " < acked v" << st.acked.rbegin()->first
                    << " seed=" << seed;
    }
  }

  const fault::FaultInjector* inj = cluster.runtime().injector();
  EXPECT_NE(inj, nullptr);  // the random plan is never empty
  ChaosDigest digest;
  digest.metrics = hub.metrics().Summary();
  digest.outcomes = outcomes.str();
  if (inj != nullptr) {
    digest.faults_dropped =
        inj->counters().dropped + inj->counters().partition_dropped;
    digest.faults_duplicated = inj->counters().duplicated;
    digest.faults_deferred = inj->counters().deferred;
    digest.crashes = inj->counters().crashes;
  }
  digest.oracle_violations = violations;
  if (violations > 0) {
    DumpFailureArtifact(seed, options.fault_plan, hub.recorder());
  }
  return digest;
}

class ChaosFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosFuzzTest, OraclesHoldUnderRandomFaultPlan) {
  const ChaosDigest d = RunChaos(GetParam());
  EXPECT_EQ(d.oracle_violations, 0u);
  EXPECT_FALSE(d.outcomes.empty());
}

// 20+ seeded plans; each generates a distinct fault schedule.
INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosFuzzTest,
    ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL, 7ULL, 8ULL, 9ULL,
                      10ULL, 11ULL, 12ULL, 13ULL, 14ULL, 15ULL, 16ULL, 17ULL,
                      18ULL, 19ULL, 20ULL, 33ULL, 77ULL),
    [](const ::testing::TestParamInfo<uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

// Determinism: the same seed replays byte-identically — same metrics dump,
// same per-op outcome log, same fault counters.
TEST(ChaosReplayTest, SameSeedReplaysByteIdentically) {
  for (uint64_t seed : {2ULL, 9ULL, 14ULL}) {
    const ChaosDigest first = RunChaos(seed);
    const ChaosDigest again = RunChaos(seed);
    EXPECT_TRUE(first == again) << "seed " << seed << " diverged on replay";
    EXPECT_EQ(first.metrics, again.metrics);
    EXPECT_EQ(first.outcomes, again.outcomes);
  }
}

// An empty plan must create no injector at all: the injection-off build is
// one null-pointer branch per message, byte-identical to pre-fault builds
// (determinism_test and the fig workloads guard the byte-identity itself).
TEST(ChaosOffTest, EmptyPlanInstallsNoInjector) {
  RingCluster cluster(RingOptions{});
  EXPECT_EQ(cluster.runtime().injector(), nullptr);
}

// Regression (satellite): a put whose *reply* is dropped must be retried by
// the client and succeed — executed exactly once server-side, answered from
// the at-most-once table.
TEST(ChaosRegressionTest, DroppedReplyRetriesAndExecutesExactlyOnce) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 1;
  o.clients = 1;
  o.seed = 5;
  const net::NodeId coord = 1;                       // owns shard 1
  const net::NodeId client_node = o.s + o.d + o.spares;  // first client
  // All coordinator->client traffic vanishes for 1 ms: the put executes and
  // commits, but every reply (and resent reply) is lost until the link heals.
  auto plan = fault::ParseFaultPlan("drop src=" + std::to_string(coord) +
                                    " dst=" + std::to_string(client_node) +
                                    " p=1 until=1ms");
  ASSERT_TRUE(plan.ok());
  o.fault_plan = *plan;
  RingCluster cluster(o);
  const MemgestId g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const Key key = [] {
    for (int i = 0;; ++i) {
      Key k = "dr-" + std::to_string(i);
      if (KeyShard(k, 3) == 1) {
        return k;
      }
    }
  }();
  const uint64_t puts_before = cluster.server(coord).counters().puts;
  cluster.client(0).ResetStats();  // drop the admin op from the counters
  ASSERT_TRUE(cluster.Put(key, "exactly-once", g).ok());
  // Executed once; the duplicate retries were answered from the table.
  EXPECT_EQ(cluster.server(coord).counters().puts, puts_before + 1);
  EXPECT_GE(cluster.server(coord).counters().resent_replies, 1u);
  EXPECT_EQ(cluster.client(0).completed(), 1u);
  auto got = cluster.Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "exactly-once");
}

// Satellite: Rep(1,s) keys degrade *gracefully* when their only copy dies —
// a clean not-found/unavailable, never a hang, never stale bytes — while
// reliable keys on the same node survive byte-exactly.
TEST(ChaosRegressionTest, Rep1DegradesCleanlyWhileReliableKeysSurvive) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 1;
  o.clients = 1;
  o.seed = 6;
  RingCluster cluster(o);
  const MemgestId rep1 =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1));
  const MemgestId rep3 =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const net::NodeId victim = 2;
  std::vector<Key> rep1_keys;
  std::map<Key, Buffer> reliable;
  for (int i = 0, r1 = 0, r3 = 0; r1 < 3 || r3 < 3; ++i) {
    const Key k = "gd-" + std::to_string(i);
    if (KeyShard(k, 3) != victim) {
      continue;
    }
    Buffer value = MakePatternBuffer(600 + 17 * i, i);
    if (r1 < 3) {
      ASSERT_TRUE(cluster.Put(k, value, rep1).ok());
      rep1_keys.push_back(k);
      ++r1;
    } else {
      ASSERT_TRUE(cluster.Put(k, value, rep3).ok());
      reliable[k] = std::move(value);
      ++r3;
    }
  }
  cluster.KillNode(victim, /*force_detect=*/true);
  cluster.RunFor(30 * sim::kMillisecond);
  for (const Key& k : rep1_keys) {
    // The only copy died: clean error, no hang, no stale bytes.
    auto got = cluster.Get(k);
    EXPECT_FALSE(got.ok()) << k;
    EXPECT_TRUE(got.status().code() == StatusCode::kNotFound ||
                got.status().code() == StatusCode::kUnavailable)
        << k << ": " << got.status();
  }
  for (const auto& [k, value] : reliable) {
    auto got = cluster.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, value) << k;
  }
}

// ---------------------------------------------------------------------------
// Membership chaos (§13): elastic resizes raced against random fault plans.
// The oracle family is unchanged — every acked write to a reliable memgest
// must read back byte-exactly with version >= the acked one — but now it has
// to hold *across shape transitions*: while a scale-out or scale-in drains,
// after it completes, and even when chaos makes the transition give up
// mid-drain and leaves both placements live.

struct MembershipChaosDigest {
  std::string outcomes;
  uint64_t oracle_violations = 0;
  uint64_t epoch = 0;
  uint32_t final_s = 0;
  uint64_t keys_moved = 0;

  bool operator==(const MembershipChaosDigest& o) const {
    return outcomes == o.outcomes &&
           oracle_violations == o.oracle_violations && epoch == o.epoch &&
           final_s == o.final_s && keys_moved == o.keys_moved;
  }
};

MembershipChaosDigest RunMembershipChaos(uint64_t seed) {
  RingOptions options;
  options.s = 3;
  options.d = 2;
  options.spares = 2;
  options.clients = 2;
  options.seed = seed;
  const uint32_t servers = options.s + options.d + options.spares;

  fault::ChaosShape shape;
  for (uint32_t n = 0; n < servers; ++n) {
    shape.faultable.push_back(n);
  }
  shape.num_nodes = servers + options.clients;
  shape.horizon_ns = 50 * sim::kMillisecond;
  shape.quiet_after_ns = 35 * sim::kMillisecond;
  shape.link_faults = 3;
  shape.node_events = 2;
  // One spare is earmarked for the join below; generate crash episodes only
  // against the capacity that remains (the runtime crash guard re-checks).
  shape.spare_capacity = options.spares - 1;
  options.fault_plan = fault::RandomFaultPlan(seed * 131 + 17, shape);
  options.fault_seed = seed;

  RingCluster cluster(options);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableMetrics(true);
  hub.EnableRecorder(true);
  const auto& p = cluster.simulator().params();

  const std::vector<MemgestId> reliable = {
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3)),
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2)),
  };

  Rng rng(seed * 104729 + 9);
  std::ostringstream outcomes;
  uint64_t violations = 0;
  struct KeyState {
    std::map<Version, Buffer> acked;  // version -> bytes
    Version highest_read = 0;
  };
  std::map<Key, KeyState> truth;
  int outstanding = 0;
  const int kKeys = 12;
  uint64_t next_nonce = 1;

  auto put_random = [&] {
    const Key key = "mk-" + std::to_string(rng.NextBelow(kKeys));
    const uint64_t nonce = next_nonce++;
    Buffer value = EncodeValue(key, nonce, 16 + rng.NextBelow(1200));
    const MemgestId g = reliable[rng.NextBelow(reliable.size())];
    ++outstanding;
    cluster.client(rng.NextBelow(2)).Put(
        key, std::make_shared<Buffer>(value), g,
        [&, key, value](Status s, Version v) {
          --outstanding;
          outcomes << "put " << key << " " << StatusCodeName(s.code())
                   << " v" << v << "\n";
          if (s.ok()) {
            truth[key].acked.emplace(v, value);
          }
        });
  };
  auto get_random = [&] {
    const Key key = "mk-" + std::to_string(rng.NextBelow(kKeys));
    const Version floor = truth[key].highest_read;
    ++outstanding;
    cluster.client(rng.NextBelow(2)).Get(key, [&, key, floor](GetResult r) {
      --outstanding;
      outcomes << "get " << key << " " << StatusCodeName(r.status.code())
               << "\n";
      if (!r.status.ok()) {
        return;  // clean failure mid-chaos/mid-resize is legal
      }
      KeyState& st = truth[key];
      auto it = st.acked.find(r.version);
      if (it != st.acked.end() && *r.data != it->second) {
        ++violations;
        ADD_FAILURE() << "corrupt read of " << key << " v" << r.version
                      << " seed=" << seed;
      }
      if (r.version < floor) {
        ++violations;
        ADD_FAILURE() << "time travel on " << key << ": v" << r.version
                      << " after v" << floor << " seed=" << seed;
      }
      st.highest_read = std::max(st.highest_read, r.version);
    });
  };

  // Working set up front, then a scale-out (and, on odd seeds, a scale-in
  // back) interleaved with random traffic while the plan's faults fire.
  for (int i = 0; i < 30; ++i) {
    put_random();
  }
  membership::RebalanceOptions ro;
  ro.max_rounds = 400;  // chaos quiesces by quiet_after; bound the driver
  membership::RebalanceCoordinator grow(&cluster, ro);
  membership::RebalanceCoordinator shrink(&cluster, ro);
  bool grow_accepted = false;
  const int kOps = 160;
  const int grow_at = 10 + static_cast<int>(rng.NextBelow(40));
  const int shrink_at = grow_at + 40 + static_cast<int>(rng.NextBelow(40));
  for (int op = 0; op < kOps; ++op) {
    if (op == grow_at) {
      const consensus::ClusterConfig& cfg =
          cluster.runtime().membership().ConfigView(
              cluster.runtime().leader_node());
      const int32_t spare = cfg.FindSpare();
      grow_accepted =
          spare >= 0 && grow.AddServer(static_cast<net::NodeId>(spare));
      // Rejection is legal mid-chaos (no live leader, spare just consumed
      // by a promotion); the oracles below hold either way.
      outcomes << "grow " << (grow_accepted ? "accepted" : "rejected")
               << "\n";
    }
    if (op == shrink_at && seed % 2 == 1 && grow_accepted &&
        !grow.active()) {
      const consensus::ClusterConfig& cfg =
          cluster.runtime().membership().ConfigView(
              cluster.runtime().leader_node());
      if (!cfg.rebalancing() && cfg.s > 3) {
        const bool ok = shrink.RemoveServer(cfg.s - 1);
        outcomes << "shrink " << (ok ? "accepted" : "rejected") << "\n";
      }
    }
    if (rng.NextBernoulli(0.55)) {
      put_random();
    } else {
      get_random();
    }
    if (rng.NextBernoulli(0.7)) {
      cluster.RunFor((100 + rng.NextBelow(400)) * sim::kMicrosecond);
    }
  }
  EXPECT_TRUE(cluster.RunUntilDone([&] {
    return outstanding == 0 && !grow.active() && !shrink.active();
  })) << "seed=" << seed << ": traffic or rebalance hung";
  const sim::SimTime settle = shape.quiet_after_ns +
                              2 * p.detection_window_ns() +
                              30 * sim::kMillisecond;
  if (cluster.simulator().now() < settle) {
    cluster.RunFor(settle - cluster.simulator().now());
  }

  // Committed-data sweep across whatever shape the cluster ended up in.
  for (const auto& [key, st] : truth) {
    if (st.acked.empty()) {
      continue;
    }
    bool done = false;
    GetResult r;
    cluster.client(0).Get(key, [&](GetResult got) {
      r = std::move(got);
      done = true;
    });
    EXPECT_TRUE(cluster.RunUntilDone([&] { return done; })) << key;
    outcomes << "swp " << key << " " << StatusCodeName(r.status.code())
             << "\n";
    if (!r.status.ok()) {
      ++violations;
      ADD_FAILURE() << "committed key " << key
                    << " unreadable after resize + heal: " << r.status
                    << " seed=" << seed;
      continue;
    }
    auto it = st.acked.find(r.version);
    if (it != st.acked.end() && *r.data != it->second) {
      ++violations;
      ADD_FAILURE() << "corrupt sweep read of " << key << " seed=" << seed;
    }
    if (r.version < st.acked.rbegin()->first) {
      ++violations;
      ADD_FAILURE() << "read-your-writes violated on " << key << ": v"
                    << r.version << " < acked v" << st.acked.rbegin()->first
                    << " seed=" << seed;
    }
  }

  const consensus::ClusterConfig& final_cfg =
      cluster.runtime().membership().ConfigView(
          cluster.runtime().leader_node());
  std::string why;
  if (!final_cfg.CheckInvariants(&why)) {
    ++violations;
    ADD_FAILURE() << "config invariants broken after chaos resize: " << why
                  << " seed=" << seed;
  }

  MembershipChaosDigest digest;
  digest.outcomes = outcomes.str();
  digest.oracle_violations = violations;
  digest.epoch = final_cfg.epoch;
  digest.final_s = final_cfg.s;
  digest.keys_moved = grow.stats().keys_moved + shrink.stats().keys_moved;
  if (violations > 0) {
    DumpFailureArtifact(seed, options.fault_plan, hub.recorder());
  }
  return digest;
}

class MembershipChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MembershipChaosTest, CommittedDataSurvivesElasticResizeUnderChaos) {
  const MembershipChaosDigest d = RunMembershipChaos(GetParam());
  EXPECT_EQ(d.oracle_violations, 0u);
  EXPECT_FALSE(d.outcomes.empty());
}

// 20+ seeded plans, each a distinct fault schedule raced against a resize.
INSTANTIATE_TEST_SUITE_P(
    Seeds, MembershipChaosTest,
    ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL, 7ULL, 8ULL, 9ULL,
                      10ULL, 11ULL, 12ULL, 13ULL, 14ULL, 15ULL, 16ULL, 17ULL,
                      18ULL, 19ULL, 20ULL, 41ULL, 85ULL),
    [](const ::testing::TestParamInfo<uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

// Same seed, same resize, byte-identical replay.
TEST(MembershipChaosReplayTest, SameSeedReplaysByteIdentically) {
  for (uint64_t seed : {3ULL, 12ULL}) {
    const MembershipChaosDigest first = RunMembershipChaos(seed);
    const MembershipChaosDigest again = RunMembershipChaos(seed);
    EXPECT_TRUE(first == again) << "seed " << seed << " diverged on replay";
    EXPECT_EQ(first.outcomes, again.outcomes);
  }
}

// Scripted §13 scenarios the random plans may or may not hit, pinned
// deterministically: a source-node kill mid-drain, a join issued while the
// joining spare is partitioned away, and a leader crash mid-transition.

struct ScriptedElastic {
  explicit ScriptedElastic(uint64_t seed, uint32_t spares,
                           fault::FaultPlan plan = {}) {
    RingOptions o;
    o.s = 3;
    o.d = 2;
    o.spares = spares;
    o.clients = 1;
    o.seed = seed;
    o.fault_plan = std::move(plan);
    cluster = std::make_unique<RingCluster>(o);
    rep3 = *cluster->CreateMemgest(MemgestDescriptor::Replicated(3));
    srs32 = *cluster->CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));
  }
  Buffer ValueOf(int i) {
    return EncodeValue("sk-" + std::to_string(i), static_cast<uint64_t>(i),
                       200 + 13 * (i % 7));
  }
  void WriteKeys(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(cluster
                      ->Put("sk-" + std::to_string(i), ValueOf(i),
                            i % 2 == 0 ? rep3 : srs32)
                      .ok())
          << i;
    }
    written = n;
  }
  void VerifyAllKeys() {
    for (int i = 0; i < written; ++i) {
      auto got = cluster->Get("sk-" + std::to_string(i));
      ASSERT_TRUE(got.ok()) << "sk-" << i << ": " << got.status();
      EXPECT_EQ(*got, ValueOf(i)) << "sk-" << i;
    }
  }
  const consensus::ClusterConfig& LeaderConfig() {
    return cluster->runtime().membership().ConfigView(
        cluster->runtime().leader_node());
  }
  std::unique_ptr<RingCluster> cluster;
  MemgestId rep3 = 0;
  MemgestId srs32 = 0;
  int written = 0;
};

TEST(MembershipChaosScriptTest, SourceCrashMidDrainResumesAndCompletes) {
  ScriptedElastic e(31, /*spares=*/2);
  e.WriteKeys(90);
  membership::RebalanceOptions ro;
  ro.keys_per_sec = 4000.0;  // stretch the drain so the kill lands inside it
  membership::RebalanceCoordinator coord(e.cluster.get(), ro);
  ASSERT_TRUE(coord.AddServer(
      static_cast<net::NodeId>(e.LeaderConfig().FindSpare())));
  e.cluster->RunFor(3 * sim::kMillisecond);
  ASSERT_TRUE(coord.active());
  // A source node dies mid-drain; the remaining spare absorbs its slot and
  // the idempotent scan/migrate protocol re-drains what the crash dropped.
  e.cluster->KillNode(1, /*force_detect=*/true);
  ASSERT_TRUE(e.cluster->RunUntilDone([&] { return !coord.active(); }));
  EXPECT_FALSE(coord.failed());
  EXPECT_EQ(e.LeaderConfig().s, 4u);
  EXPECT_FALSE(e.LeaderConfig().rebalancing());
  e.VerifyAllKeys();
}

TEST(MembershipChaosScriptTest, JoinDuringPartitionCompletesAfterHeal) {
  // Node 5 is the only spare; it is partitioned away from every other node
  // (servers 0-4 and the client, node 6) when the join is issued.
  auto plan =
      fault::ParseFaultPlan("partition a=0,1,2,3,4,6 b=5 at=0ms heal=12ms");
  ASSERT_TRUE(plan.ok());
  ScriptedElastic e(32, /*spares=*/1, *plan);
  e.WriteKeys(60);
  ASSERT_LT(e.cluster->simulator().now(), 10 * sim::kMillisecond)
      << "writes outran the partition window";
  membership::RebalanceCoordinator coord(e.cluster.get());
  ASSERT_TRUE(coord.AddServer(5));
  e.cluster->RunFor(2 * sim::kMillisecond);
  // The joining node cannot hear the config while partitioned: the drain
  // holds (promotions and installs would be dropped on the floor).
  EXPECT_TRUE(coord.active());
  // After the heal, heartbeat anti-entropy delivers the missed config and
  // the transition completes.
  ASSERT_TRUE(e.cluster->RunUntilDone([&] { return !coord.active(); }));
  EXPECT_FALSE(coord.failed());
  EXPECT_EQ(e.LeaderConfig().s, 4u);
  EXPECT_FALSE(e.LeaderConfig().rebalancing());
  EXPECT_NE(e.LeaderConfig().slot_of_node[5], consensus::kSpareSlot);
  e.VerifyAllKeys();
}

TEST(MembershipChaosScriptTest, LeaderCrashMidTransitionReanchorsAndDrains) {
  ScriptedElastic e(33, /*spares=*/2);
  e.WriteKeys(90);
  membership::RebalanceOptions ro;
  ro.keys_per_sec = 4000.0;
  membership::RebalanceCoordinator coord(e.cluster.get(), ro);
  ASSERT_TRUE(coord.AddServer(
      static_cast<net::NodeId>(e.LeaderConfig().FindSpare())));
  e.cluster->RunFor(3 * sim::kMillisecond);
  ASSERT_TRUE(coord.active());
  // The coordinator's anchor dies mid-transition. The next scan round
  // re-anchors at the elected successor and the drain resumes.
  const net::NodeId old_leader = e.cluster->runtime().leader_node();
  e.cluster->KillNode(old_leader, /*force_detect=*/true);
  ASSERT_TRUE(e.cluster->RunUntilDone([&] { return !coord.active(); }));
  EXPECT_FALSE(coord.failed());
  EXPECT_GE(coord.stats().leader_moves, 1u);
  EXPECT_NE(e.cluster->runtime().leader_node(), old_leader);
  EXPECT_EQ(e.LeaderConfig().s, 4u);
  EXPECT_FALSE(e.LeaderConfig().rebalancing());
  e.VerifyAllKeys();
}

// The ringctl fault-spec grammar round-trips through ToString().
TEST(FaultPlanTest, ParseAndToStringRoundTrip) {
  const std::string spec =
      "drop src=1 dst=6 p=0.25 from=1ms until=5ms\n"
      "dup src=* dst=2 p=0.1\n"
      "delay src=0 dst=* ns=20us jitter=5us\n"
      "reorder src=3 dst=4 p=0.5 window=100us\n"
      "partition a=0,1,2 b=3,4 at=2ms heal=4ms\n"
      "pause node=5 at=1ms resume=3ms\n"
      "crash node=2 at=6ms recover=9ms\n";
  auto plan = fault::ParseFaultPlan(spec);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->links.size(), 4u);
  // partition+heal, pause+resume, crash+recover: two events per directive.
  EXPECT_EQ(plan->events.size(), 6u);
  auto reparsed = fault::ParseFaultPlan(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(plan->ToString(), reparsed->ToString());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(fault::ParseFaultPlan("drop src=1").ok());          // no p=
  EXPECT_FALSE(fault::ParseFaultPlan("drop src=1 dst=2 p=2").ok());  // p>1
  EXPECT_FALSE(fault::ParseFaultPlan("explode node=3 at=1ms").ok());
  EXPECT_FALSE(fault::ParseFaultPlan("pause at=1ms").ok());  // no node
}

TEST(FaultPlanTest, RandomPlanIsDeterministicAndQuiesces) {
  fault::ChaosShape shape;
  shape.faultable = {0, 1, 2, 3, 4};
  shape.num_nodes = 7;
  shape.horizon_ns = 50 * sim::kMillisecond;
  shape.quiet_after_ns = 30 * sim::kMillisecond;
  const fault::FaultPlan a = fault::RandomFaultPlan(99, shape);
  const fault::FaultPlan b = fault::RandomFaultPlan(99, shape);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_FALSE(a.empty());
  for (const auto& lf : a.links) {
    EXPECT_LE(lf.until_ns, shape.quiet_after_ns);
  }
  for (const auto& ev : a.events) {
    EXPECT_LE(ev.at_ns, shape.quiet_after_ns);
  }
  EXPECT_NE(a.ToString(), fault::RandomFaultPlan(100, shape).ToString());
}

}  // namespace
}  // namespace ring
