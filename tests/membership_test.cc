// Elastic cluster membership (§13): config-level transition properties, the
// rebalance planner, end-to-end online scale-out/in with data, and the
// injector's crash-safety guard.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/consensus/config.h"
#include "src/fault/fault.h"
#include "src/membership/rebalance.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

using consensus::ClusterConfig;
using consensus::kSpareSlot;
using membership::RebalanceCoordinator;
using membership::RebalanceOptions;
using membership::RebalancePlanner;
using membership::RebalanceStats;
using membership::ScaleIn;
using membership::ScaleOut;

// ---------------------------------------------------------------------------
// Property-style config transitions: random interleavings of add / remove /
// complete / fail+promote / readmit keep the structural invariants and never
// move the epoch backwards.

TEST(MembershipConfig, RandomInterleavingsKeepInvariants) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    ClusterConfig c = ClusterConfig::Initial(4, 2, 10);
    uint64_t last_epoch = c.epoch;
    std::string why;
    for (int step = 0; step < 200; ++step) {
      switch (rng.NextBelow(5)) {
        case 0: {  // grow, if a spare is live
          const int32_t spare = c.FindSpare();
          if (spare >= 0) {
            c.BeginAddServer(static_cast<net::NodeId>(spare));
          }
          break;
        }
        case 1:  // shrink a random coordinator slot
          if (c.s > 1) {
            c.BeginRemoveServer(
                static_cast<uint32_t>(rng.NextBelow(c.s)));
          }
          break;
        case 2:  // retire the previous shape
          if (c.rebalancing()) {
            c.CompleteRebalance();
          }
          break;
        case 3: {  // fail a random slotted node, promote a spare over it
          const uint32_t slot = static_cast<uint32_t>(
              rng.NextBelow(c.num_slots()));
          const net::NodeId victim = c.NodeOfSlot(slot);
          if (!c.failed[victim]) {
            c.MarkFailed(victim);
            const int32_t spare = c.FindSpare();
            if (spare >= 0) {
              c.Promote(victim, static_cast<net::NodeId>(spare));
            }
          }
          break;
        }
        case 4: {  // readmit a random failed node
          std::vector<net::NodeId> dead;
          for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
            if (c.failed[n]) {
              dead.push_back(n);
            }
          }
          if (!dead.empty()) {
            c.Readmit(dead[rng.NextBelow(dead.size())]);
          }
          break;
        }
      }
      ASSERT_TRUE(c.CheckInvariants(&why))
          << "seed " << seed << " step " << step << ": " << why;
      ASSERT_GE(c.epoch, last_epoch) << "seed " << seed << " step " << step;
      last_epoch = c.epoch;
    }
  }
}

TEST(MembershipConfig, AddRemoveRoundTripRestoresShape) {
  ClusterConfig c = ClusterConfig::Initial(3, 2, 7);
  const std::vector<net::NodeId> before = c.node_of_slot;
  ASSERT_TRUE(c.BeginAddServer(5));
  EXPECT_TRUE(c.rebalancing());
  EXPECT_EQ(c.s, 4u);
  EXPECT_EQ(c.Previous().s, 3u);
  c.CompleteRebalance();
  EXPECT_FALSE(c.rebalancing());
  ASSERT_TRUE(c.BeginRemoveServer(3));  // the slot node 5 joined into
  c.CompleteRebalance();
  EXPECT_EQ(c.s, 3u);
  EXPECT_EQ(c.node_of_slot, before);
  EXPECT_EQ(c.FindSpare(), 5);  // the removed node returned to the pool
}

// ---------------------------------------------------------------------------
// Planner arithmetic.

TEST(RebalancePlanner, PlanCoversOldShapeAndEstimatesMovement) {
  ClusterConfig c = ClusterConfig::Initial(6, 2, 10);
  ASSERT_TRUE(c.BeginAddServer(8));
  const RebalancePlanner::Plan plan = RebalancePlanner::Compute(c);
  EXPECT_EQ(plan.old_s, 6u);
  EXPECT_EQ(plan.new_s, 7u);
  EXPECT_EQ(plan.source_shards.size(), 6u);
  EXPECT_FALSE(plan.source_nodes.empty());
  EXPECT_GT(plan.moved_fraction, 0.0);
  EXPECT_LE(plan.moved_fraction, 1.0);
}

TEST(RebalancePlanner, KeyMovesMatchesPlacements) {
  ClusterConfig c = ClusterConfig::Initial(6, 2, 10);
  ASSERT_TRUE(c.BeginAddServer(8));
  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("key-" + std::to_string(i));
  }
  const std::vector<Key> changed = RebalancePlanner::ChangedKeys(c, keys);
  // The changed subset is exactly the keys whose coordinator node differs.
  std::set<Key> changed_set(changed.begin(), changed.end());
  const consensus::Placement cur = c.Current();
  const consensus::Placement prev = c.Previous();
  for (const Key& key : keys) {
    const bool moves =
        prev.CoordinatorOfShard(KeyShard(key, prev.num_shards())) !=
        cur.CoordinatorOfShard(KeyShard(key, cur.num_shards()));
    EXPECT_EQ(changed_set.count(key) != 0, moves) << key;
  }
  EXPECT_FALSE(changed.empty());          // growing 6->7 remaps most keys
  EXPECT_LT(changed.size(), keys.size()); // ...but some stay put
  // A static config moves nothing.
  ClusterConfig still = ClusterConfig::Initial(6, 2, 10);
  EXPECT_TRUE(RebalancePlanner::ChangedKeys(still, keys).empty());
}

// ---------------------------------------------------------------------------
// End-to-end online resizes with data.

class ElasticClusterTest : public ::testing::Test {
 protected:
  void Start(uint32_t s, uint32_t spares, uint64_t seed = 11) {
    RingOptions opt;
    opt.s = s;
    opt.d = 2;
    opt.spares = spares;
    opt.clients = 1;
    opt.seed = seed;
    cluster_ = std::make_unique<RingCluster>(opt);
    rep3_ = *cluster_->CreateMemgest(MemgestDescriptor::Replicated(3, "rep3"));
    srs32_ =
        *cluster_->CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "srs32"));
  }

  void WriteKeys(int from, int to) {
    for (int i = from; i < to; ++i) {
      const Key key = "key-" + std::to_string(i);
      const MemgestId target = (i % 2 == 0) ? rep3_ : srs32_;
      ASSERT_TRUE(cluster_->Put(key, ValueOf(i), target).ok()) << key;
      expected_[key] = ValueOf(i);
    }
  }

  void VerifyAllKeys() {
    for (const auto& [key, value] : expected_) {
      auto got = cluster_->Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status();
      EXPECT_EQ(std::string(got->begin(), got->end()), value) << key;
    }
  }

  static std::string ValueOf(int i) {
    return "value-" + std::to_string(i) + std::string(64, 'x');
  }

  const ClusterConfig& LeaderConfig() {
    RingRuntime& rt = cluster_->runtime();
    return rt.membership().ConfigView(rt.leader_node());
  }

  std::unique_ptr<RingCluster> cluster_;
  MemgestId rep3_ = 0;
  MemgestId srs32_ = 0;
  std::map<Key, std::string> expected_;
};

TEST_F(ElasticClusterTest, ScaleOut6To8AndBackOnline) {
  Start(/*s=*/6, /*spares=*/2);
  WriteKeys(0, 120);
  std::string why;

  // Scale out 6 -> 8: both spares (nodes 8 and 9) join as coordinators.
  RebalanceStats grow1;
  ASSERT_TRUE(ScaleOut(*cluster_, 8, {}, &grow1).ok());
  EXPECT_EQ(LeaderConfig().s, 7u);
  EXPECT_FALSE(LeaderConfig().rebalancing());
  ASSERT_TRUE(LeaderConfig().CheckInvariants(&why)) << why;
  EXPECT_GT(grow1.keys_moved + grow1.keys_reencoded, 0u);
  VerifyAllKeys();

  RebalanceStats grow2;
  ASSERT_TRUE(ScaleOut(*cluster_, 9, {}, &grow2).ok());
  EXPECT_EQ(LeaderConfig().s, 8u);
  VerifyAllKeys();

  // The grown cluster accepts new writes at the new shape.
  WriteKeys(120, 160);
  VerifyAllKeys();

  // Scale back in 8 -> 6: the two youngest coordinator slots leave.
  ASSERT_TRUE(ScaleIn(*cluster_, 7).ok());
  EXPECT_EQ(LeaderConfig().s, 7u);
  ASSERT_TRUE(ScaleIn(*cluster_, 6).ok());
  EXPECT_EQ(LeaderConfig().s, 6u);
  ASSERT_TRUE(LeaderConfig().CheckInvariants(&why)) << why;
  EXPECT_EQ(LeaderConfig().spares.size(), 2u);  // both returned to the pool
  VerifyAllKeys();
  WriteKeys(160, 180);
  VerifyAllKeys();
}

TEST_F(ElasticClusterTest, WritesRacingTheDrainStayConsistent) {
  Start(/*s=*/6, /*spares=*/1, /*seed=*/23);
  WriteKeys(0, 80);

  RebalanceCoordinator coord(cluster_.get(), RebalanceOptions{});
  ASSERT_TRUE(coord.AddServer(8));
  // Overwrites racing the background drain: each Put drives the simulator,
  // so migration traffic interleaves with these foreground commits.
  for (int i = 0; i < 80; i += 3) {
    const Key key = "key-" + std::to_string(i);
    const std::string value = "racing-" + std::to_string(i);
    ASSERT_TRUE(
        cluster_->Put(key, value, (i % 2 == 0) ? rep3_ : srs32_).ok());
    expected_[key] = value;
  }
  ASSERT_TRUE(cluster_->RunUntilDone([&coord] { return !coord.active(); }));
  ASSERT_FALSE(coord.failed());
  EXPECT_EQ(LeaderConfig().s, 7u);
  VerifyAllKeys();  // read-your-writes across the shape transition
}

TEST_F(ElasticClusterTest, PreconditionsRejectBadTransitions) {
  Start(/*s=*/3, /*spares=*/1);
  // Node 2 is a coordinator, not a spare.
  EXPECT_FALSE(ScaleOut(*cluster_, 2).ok());
  // Slot 4 is a redundant slot, not a coordinator slot.
  EXPECT_FALSE(ScaleIn(*cluster_, 4).ok());
  // SRS(3,2) needs k <= s: shrinking 3 -> 2 must be refused by the catalogue.
  EXPECT_FALSE(ScaleIn(*cluster_, 2).ok());
  EXPECT_EQ(LeaderConfig().s, 3u);
  EXPECT_FALSE(LeaderConfig().rebalancing());
}

TEST_F(ElasticClusterTest, StaticClusterCountersStayZero) {
  Start(/*s=*/3, /*spares=*/0);
  WriteKeys(0, 40);
  VerifyAllKeys();
  for (net::NodeId n = 0; n < cluster_->runtime().num_server_nodes(); ++n) {
    const RingServer::Counters& c = cluster_->server(n).counters();
    EXPECT_EQ(c.forwards, 0u);
    EXPECT_EQ(c.fenced_drops, 0u);
    EXPECT_EQ(c.keys_migrated, 0u);
    EXPECT_EQ(c.keys_reencoded, 0u);
    EXPECT_EQ(c.installs, 0u);
  }
}

// ---------------------------------------------------------------------------
// Injector crash guard (the documented allow_crash precondition, enforced).

TEST(CrashGuard, DowngradesCrashWhenNoSpareIsLive) {
  RingOptions opt;
  opt.s = 3;
  opt.d = 2;
  opt.spares = 0;  // nothing can absorb a promotion
  opt.fault_plan =
      *fault::ParseFaultPlan("crash node=1 at=2ms recover=30ms");
  RingCluster cluster(opt);
  ASSERT_TRUE(cluster.CreateMemgest(MemgestDescriptor::Replicated(3)).ok());
  ASSERT_TRUE(cluster.Put("k", "v").ok());
  cluster.RunFor(50 * sim::kMillisecond);
  const fault::FaultInjector* inj = cluster.runtime().injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->counters().crashes, 0u);
  EXPECT_EQ(inj->counters().downgraded_crashes, 1u);
  EXPECT_EQ(inj->counters().recoveries, 0u);
  // The node was only paused: no promotion happened and data still serves.
  auto got = cluster.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->begin(), got->end()), "v");
}

TEST(CrashGuard, AllowsCrashWhenASpareCanAbsorbIt) {
  RingOptions opt;
  opt.s = 3;
  opt.d = 2;
  opt.spares = 1;
  opt.fault_plan =
      *fault::ParseFaultPlan("crash node=1 at=2ms recover=60ms");
  RingCluster cluster(opt);
  ASSERT_TRUE(cluster.CreateMemgest(MemgestDescriptor::Replicated(3)).ok());
  ASSERT_TRUE(cluster.Put("k", "v").ok());
  cluster.RunFor(100 * sim::kMillisecond);
  const fault::FaultInjector* inj = cluster.runtime().injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->counters().crashes, 1u);
  EXPECT_EQ(inj->counters().downgraded_crashes, 0u);
  auto got = cluster.Get("k");
  ASSERT_TRUE(got.ok());
}

TEST(CrashGuard, RandomPlanGateRespectsSpareCapacity) {
  fault::ChaosShape shape;
  shape.faultable = {0, 1, 2, 3, 4};
  shape.num_nodes = 6;
  shape.horizon_ns = 100 * sim::kMillisecond;
  shape.quiet_after_ns = 80 * sim::kMillisecond;
  shape.node_events = 8;
  shape.allow_crash = true;
  shape.spare_capacity = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const fault::FaultPlan plan = fault::RandomFaultPlan(seed, shape);
    for (const fault::NodeEvent& ev : plan.events) {
      EXPECT_NE(ev.kind, fault::NodeEvent::Kind::kCrash) << "seed " << seed;
      EXPECT_NE(ev.kind, fault::NodeEvent::Kind::kRecover) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ring
