// Failure matrix: every (victim node x storage scheme x detection mode)
// combination on the standard 5-node deployment must preserve all committed
// reliably-stored data byte-exactly, and the cluster must keep serving new
// traffic afterwards.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "src/common/hash.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

// Post-detection settle time: spare promotion, metadata fetch, and parity
// rebuild all finish well within this.
constexpr sim::SimTime kRecoverySlack = 30 * sim::kMillisecond;

struct Case {
  net::NodeId victim;
  bool erasure;      // SRS(3,2) vs Rep(3)
  bool force_detect; // immediate detection vs heartbeat timeout
  bool recover = false;  // crash-recovery: restart the victim and rejoin
};

class FailureMatrixTest : public ::testing::TestWithParam<Case> {};

TEST_P(FailureMatrixTest, CommittedDataSurvivesAndClusterServes) {
  const Case c = GetParam();
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 2;
  o.clients = 1;
  o.seed = 1000 + c.victim * 10 + c.erasure;
  RingCluster cluster(o);
  const auto& p = o.params;
  const MemgestId g = *cluster.CreateMemgest(
      c.erasure ? MemgestDescriptor::ErasureCoded(3, 2)
                : MemgestDescriptor::Replicated(3));

  std::map<Key, Buffer> committed;
  for (int i = 0; i < 30; ++i) {
    const Key key = "fm-" + std::to_string(i);
    Buffer value = MakePatternBuffer(200 + 137 * i, i);
    ASSERT_TRUE(cluster.Put(key, value, g).ok()) << key;
    committed[key] = std::move(value);
  }

  cluster.KillNode(c.victim, c.force_detect);
  // Worst-case window until the failure is handled (election included when
  // the victim led the cluster) plus recovery time.
  cluster.RunFor(c.force_detect
                     ? kRecoverySlack
                     : p.election_window_ns(o.s + o.d + o.spares) +
                           kRecoverySlack);

  if (c.recover) {
    // The victim reboots memory-less and petitions for readmission. Its
    // old slot is already re-staffed by a spare, so it rejoins the spare
    // pool; all committed data must still read back byte-exactly.
    cluster.RestartNode(c.victim);
    cluster.RunFor(p.detection_window_ns() + kRecoverySlack);
  }

  for (const auto& [key, value] : committed) {
    auto got = cluster.Get(key);
    ASSERT_TRUE(got.ok()) << key << " victim=" << c.victim;
    EXPECT_EQ(*got, value) << key;
  }
  // The cluster accepts and re-reads new writes on every shard.
  for (int i = 0; i < 9; ++i) {
    const Key key = "post-" + std::to_string(i);
    const Buffer value = MakePatternBuffer(300 + i, 99 + i);
    ASSERT_TRUE(cluster.Put(key, value, g).ok()) << key;
    auto got = cluster.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
  if (c.recover) {
    // The rejoined node is a live member again (not marked failed).
    const auto& config =
        cluster.runtime().membership().ConfigView(cluster.runtime().leader_node());
    EXPECT_FALSE(config.failed[c.victim]) << "victim not readmitted";
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (net::NodeId victim = 0; victim < 5; ++victim) {
    for (bool erasure : {false, true}) {
      // Heartbeat detection exercised on a subset (it is slow in sim time);
      // force-detect covers every node.
      cases.push_back({victim, erasure, true});
    }
  }
  cases.push_back({1, true, false});
  cases.push_back({3, false, false});
  // Crash-recovery column: the victim restarts memory-less and rejoins.
  cases.push_back({1, false, true, /*recover=*/true});
  cases.push_back({2, true, true, /*recover=*/true});
  cases.push_back({0, true, false, /*recover=*/true});  // leader crash
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FailureMatrixTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string("victim") + std::to_string(info.param.victim) +
             (info.param.erasure ? "_srs32" : "_rep3") +
             (info.param.force_detect ? "_forced" : "_heartbeat") +
             (info.param.recover ? "_rejoin" : "");
    });

// Crash-recovery with an empty spare pool: the victim's slot stays dark
// until the node itself reboots and petitions; the leader hands the slot
// back and the node rebuilds it from the surviving redundancy. Committed
// replicated data must come back byte-exactly through the restarted node.
TEST(CrashRecoveryTest, RejoinReclaimsOwnSlotWhenNoSpareExists) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 0;
  o.seed = 81;
  RingCluster cluster(o);
  const auto& p = o.params;
  const MemgestId g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  std::map<Key, Buffer> committed;
  for (int i = 0; i < 20; ++i) {
    const Key key = "cr-" + std::to_string(i);
    Buffer value = MakePatternBuffer(100 + 53 * i, i);
    ASSERT_TRUE(cluster.Put(key, value, g).ok()) << key;
    committed[key] = std::move(value);
  }
  cluster.KillNode(1, /*force_detect=*/false);
  cluster.RunFor(p.detection_window_ns() + kRecoverySlack);
  // Slot 1 is dark (no spare): its shard is unavailable, not wrong.
  cluster.RestartNode(1);
  cluster.RunFor(p.detection_window_ns() + kRecoverySlack);
  for (const auto& [key, value] : committed) {
    auto got = cluster.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
  // The restarted node runs its old slot again.
  const auto& config =
      cluster.runtime().membership().ConfigView(cluster.runtime().leader_node());
  EXPECT_FALSE(config.failed[1]);
  EXPECT_EQ(config.node_of_slot[config.slot_of_node[1]], 1u);
}

TEST(DoubleFailureTest, Srs32ToleratesTwoSequentialFailures) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 2;
  o.seed = 77;
  RingCluster cluster(o);
  const MemgestId g =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));
  std::map<Key, Buffer> committed;
  for (int i = 0; i < 20; ++i) {
    const Key key = "df-" + std::to_string(i);
    Buffer value = MakePatternBuffer(400 + 41 * i, i);
    ASSERT_TRUE(cluster.Put(key, value, g).ok());
    committed[key] = std::move(value);
  }
  // First failure: a data coordinator; wait for full recovery.
  cluster.KillNode(1, /*force_detect=*/true);
  cluster.RunFor(50 * sim::kMillisecond);
  // Second failure: a parity home.
  cluster.KillNode(3, /*force_detect=*/true);
  cluster.RunFor(50 * sim::kMillisecond);
  for (const auto& [key, value] : committed) {
    auto got = cluster.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
}

TEST(DoubleFailureTest, Rep3SurvivesCoordinatorAndReplica) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 2;
  o.seed = 78;
  RingCluster cluster(o);
  const MemgestId g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const Key key = [] {
    for (int i = 0;; ++i) {
      Key k = "rr-" + std::to_string(i);
      if (KeyShard(k, 3) == 1) {
        return k;
      }
    }
  }();
  const Buffer value = MakePatternBuffer(2000, 5);
  ASSERT_TRUE(cluster.Put(key, value, g).ok());
  // Shard 1's copies live on slots 1 (primary), 2, 3. Kill two of them with
  // recovery time in between.
  cluster.KillNode(1, /*force_detect=*/true);
  cluster.RunFor(50 * sim::kMillisecond);
  cluster.KillNode(2, /*force_detect=*/true);
  cluster.RunFor(50 * sim::kMillisecond);
  auto got = cluster.Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
}

TEST(SparePoolExhaustionTest, UnrecoverableShardTimesOutGracefully) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 0;  // nobody to promote
  o.seed = 79;
  o.params.client_retry_timeout_ns = sim::kMillisecond;
  RingCluster cluster(o);
  const MemgestId g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const Key key = [] {
    for (int i = 0;; ++i) {
      Key k = "sp-" + std::to_string(i);
      if (KeyShard(k, 3) == 2) {
        return k;
      }
    }
  }();
  ASSERT_TRUE(cluster.Put(key, "doomed-shard", g).ok());
  cluster.KillNode(2, /*force_detect=*/true);
  cluster.RunFor(5 * sim::kMillisecond);
  // No spare: the shard is dark; the client errors out instead of hanging.
  auto got = cluster.Get(key);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  // Other shards keep working.
  const Key other = [] {
    for (int i = 0;; ++i) {
      Key k = "ok-" + std::to_string(i);
      if (KeyShard(k, 3) == 0) {
        return k;
      }
    }
  }();
  ASSERT_TRUE(cluster.Put(other, "alive", g).ok());
  EXPECT_TRUE(cluster.Get(other).ok());
}

}  // namespace
}  // namespace ring
