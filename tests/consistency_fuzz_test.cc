// Randomized strong-consistency tests (paper §5.2).
//
// Concurrent clients fire random put/get/move/delete traffic at a cluster;
// the properties checked are the ones strong (sequential) consistency
// promises regardless of interleaving:
//   - integrity: every successful get returns bytes some client once put
//     for that exact key,
//   - version monotonicity: reads of a key never travel back in time,
//   - read-your-writes: after a put acks with version v, later reads see
//     version >= v,
//   - agreement: when traffic quiesces, every client reads the same value,
//   - durability: values committed to reliable memgests survive a
//     coordinator failure byte-exactly.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/policy/autotier.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

// Values encode (key, nonce) so integrity violations are detectable.
Buffer EncodeValue(const Key& key, uint64_t nonce, size_t size) {
  Buffer out = MakePatternBuffer(size, HashKey(key) ^ nonce);
  const std::string tag = key + "#" + std::to_string(nonce) + ";";
  for (size_t i = 0; i < tag.size() && i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(tag[i]);
  }
  return out;
}

// Random concurrent traffic against one cluster; shared by the plain fuzz
// and the policy variant. `with_policy` runs the adaptive resilience
// manager (src/policy) on top of the same traffic: its background moves —
// driven by the temperatures the traffic itself induces — interleave with
// the puts/gets/deletes, and the same consistency properties must hold.
void RunRandomTraffic(uint64_t seed, uint32_t groups, bool with_policy) {
  RingOptions options;
  options.s = 3;
  options.d = 2;
  options.groups = groups;
  options.spares = 1;
  options.clients = with_policy ? 4 : 3;  // client 3 issues policy moves
  options.seed = seed;
  // Run the happens-before race detector alongside the traffic: strong
  // consistency also means no unfenced RDMA access pairs (observation only —
  // the schedule is unchanged).
  options.analyze_races = true;
  RingCluster cluster(options);
  std::vector<MemgestId> memgests = {
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1)),
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3)),
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(2, 1)),
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2)),
  };

  std::optional<policy::AutoTierManager> manager;
  if (with_policy) {
    policy::AutoTierOptions ao;
    ao.epoch_ns = 2 * sim::kMillisecond;
    ao.mover.client_index = 3;
    ao.mover.moves_per_sec = 10'000.0;
    manager.emplace(
        &cluster,
        std::vector<policy::Tier>{
            {memgests[1], MemgestDescriptor::Replicated(3),
             cost::PriceTable{}.hot},
            {memgests[3], MemgestDescriptor::ErasureCoded(3, 2),
             cost::PriceTable{}.cool}},
        ao);
    manager->Start();
  }

  Rng rng(seed * 977 + 13);
  const int kKeys = 12;
  auto key_of = [](int i) { return "fuzz-" + std::to_string(i); };

  // Ground truth, updated from completion callbacks only (what a client
  // actually learned).
  struct KeyState {
    std::map<Version, Buffer> acked_puts;   // version -> value
    Version highest_read = 0;               // monotonicity witness
    std::map<Version, bool> deleted;        // tombstone versions
  };
  std::map<Key, KeyState> truth;
  uint64_t next_nonce = 1;
  int outstanding = 0;
  int violations = 0;

  auto check_read = [&](const Key& key, const GetResult& r) {
    KeyState& st = truth[key];
    if (!r.status.ok()) {
      return;  // NotFound is legal while deletes race with puts
    }
    // Integrity: the version must be an acked put... or a put that was in
    // flight; we only assert on versions we know about.
    auto it = st.acked_puts.find(r.version);
    if (it != st.acked_puts.end() && *r.data != it->second) {
      ++violations;
      ADD_FAILURE() << "corrupt read of " << key << " v" << r.version;
    }
    // Monotonicity per key across the whole system (sequential consistency:
    // versions are totally ordered by the coordinator).
    if (r.version < st.highest_read) {
      ++violations;
      ADD_FAILURE() << "time travel on " << key << ": v" << r.version
                    << " after v" << st.highest_read;
    }
    st.highest_read = std::max(st.highest_read, r.version);
  };

  const int kOps = 600;
  for (int op = 0; op < kOps; ++op) {
    const int key_idx = static_cast<int>(rng.NextBelow(kKeys));
    const Key key = key_of(key_idx);
    const uint32_t client = static_cast<uint32_t>(rng.NextBelow(3));
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      const uint64_t nonce = next_nonce++;
      const size_t size = 16 + rng.NextBelow(2000);
      const MemgestId g = memgests[rng.NextBelow(memgests.size())];
      Buffer value = EncodeValue(key, nonce, size);
      ++outstanding;
      cluster.client(client).Put(
          key, std::make_shared<Buffer>(value), g,
          [&, key, value](Status s, Version v) {
            --outstanding;
            if (s.ok()) {
              truth[key].acked_puts[v] = value;
            }
          });
    } else if (dice < 0.80) {
      ++outstanding;
      cluster.client(client).Get(key, [&, key](GetResult r) {
        --outstanding;
        check_read(key, r);
      });
    } else if (dice < 0.92) {
      const MemgestId g = memgests[rng.NextBelow(memgests.size())];
      ++outstanding;
      cluster.client(client).Move(key, g, [&, key](Status s, Version v) {
        --outstanding;
        if (s.ok()) {
          // A move re-homes the highest version's bytes under version v;
          // record it as an acked put of unknown bytes only if we know the
          // source... integrity for moves is covered by the final sweep.
          (void)v;
        }
      });
    } else {
      ++outstanding;
      cluster.client(client).Delete(key, [&](Status) { --outstanding; });
    }
    // Random pacing: bursts and gaps.
    if (rng.NextBernoulli(0.6)) {
      cluster.RunFor(rng.NextBelow(30) * sim::kMicrosecond);
    }
  }
  ASSERT_TRUE(cluster.RunUntilDone([&] { return outstanding == 0; }));
  cluster.RunFor(5 * sim::kMillisecond);
  if (manager.has_value()) {
    // Let queued policy moves finish so the sweep also covers freshly
    // re-tiered keys.
    ASSERT_TRUE(cluster.RunUntilDone([&] { return manager->mover().idle(); }));
    cluster.RunFor(2 * sim::kMillisecond);
  }

  // Quiescent agreement + read-your-writes sweep: all clients agree, and
  // the version is at least the highest acked put version (background moves
  // only ever advance a key's version).
  for (int i = 0; i < kKeys; ++i) {
    const Key key = key_of(i);
    std::vector<GetResult> reads;
    for (uint32_t c = 0; c < 3; ++c) {
      GetResult r;
      bool done = false;
      cluster.client(c).Get(key, [&](GetResult got) {
        r = std::move(got);
        done = true;
      });
      ASSERT_TRUE(cluster.RunUntilDone([&] { return done; }));
      check_read(key, r);
      reads.push_back(std::move(r));
    }
    for (uint32_t c = 1; c < 3; ++c) {
      ASSERT_EQ(reads[0].status.ok(), reads[c].status.ok()) << key;
      if (reads[0].status.ok()) {
        EXPECT_EQ(*reads[0].data, *reads[c].data)
            << "clients disagree on " << key;
      }
    }
    const KeyState& st = truth[key];
    if (!st.acked_puts.empty() && reads[0].status.ok()) {
      EXPECT_GE(reads[0].version, st.acked_puts.rbegin()->first)
          << "read-your-writes violated on " << key;
    }
  }
  EXPECT_EQ(violations, 0);
  const analysis::RaceDetector* race = cluster.simulator().race();
  ASSERT_NE(race, nullptr);
  EXPECT_TRUE(race->races().empty()) << race->Report(
      &cluster.simulator().hub().tracer());
  if (manager.has_value()) {
    manager->Stop();
  }
}

// (seed, memgest groups): the grouped variants exercise §5.4 rotation under
// the same random traffic.
class ConsistencyFuzzTest
    : public ::testing::TestWithParam<std::pair<uint64_t, uint32_t>> {};

TEST_P(ConsistencyFuzzTest, RandomConcurrentTraffic) {
  const auto [seed, groups] = GetParam();
  RunRandomTraffic(seed, groups, /*with_policy=*/false);
}

// Same properties with the adaptive resilience manager re-tiering keys in
// the background while the traffic runs.
class PolicyConsistencyFuzzTest
    : public ::testing::TestWithParam<std::pair<uint64_t, uint32_t>> {};

TEST_P(PolicyConsistencyFuzzTest, BackgroundMovesPreserveConsistency) {
  const auto [seed, groups] = GetParam();
  RunRandomTraffic(seed, groups, /*with_policy=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConsistencyFuzzTest,
    ::testing::Values(std::make_pair(1ULL, 1u), std::make_pair(2ULL, 1u),
                      std::make_pair(3ULL, 1u), std::make_pair(7ULL, 1u),
                      std::make_pair(13ULL, 1u), std::make_pair(21ULL, 5u),
                      std::make_pair(42ULL, 5u), std::make_pair(99ULL, 5u)),
    [](const ::testing::TestParamInfo<std::pair<uint64_t, uint32_t>>& info) {
      return "seed" + std::to_string(info.param.first) + "_g" +
             std::to_string(info.param.second);
    });

INSTANTIATE_TEST_SUITE_P(
    Seeds, PolicyConsistencyFuzzTest,
    ::testing::Values(std::make_pair(4ULL, 1u), std::make_pair(11ULL, 1u),
                      std::make_pair(23ULL, 1u), std::make_pair(57ULL, 5u)),
    [](const ::testing::TestParamInfo<std::pair<uint64_t, uint32_t>>& info) {
      return "seed" + std::to_string(info.param.first) + "_g" +
             std::to_string(info.param.second);
    });

TEST(ConsistencyFailureFuzzTest, CommittedReliableDataSurvivesFailures) {
  for (uint64_t seed : {5ULL, 17ULL, 33ULL}) {
    RingOptions options;
    options.s = 3;
    options.d = 2;
    options.spares = 2;
    options.clients = 2;
    options.seed = seed;
    RingCluster cluster(options);
    const MemgestId rep3 =
        *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
    const MemgestId srs32 =
        *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));

    Rng rng(seed);
    std::map<Key, Buffer> committed;
    for (int i = 0; i < 60; ++i) {
      const Key key = "surv-" + std::to_string(i);
      const Buffer value =
          EncodeValue(key, i, 64 + rng.NextBelow(4000));
      const MemgestId g = rng.NextBernoulli(0.5) ? rep3 : srs32;
      ASSERT_TRUE(cluster.Put(key, value, g).ok());
      committed[key] = value;
    }
    // Kill a random non-leader KVS node mid-flight with extra traffic racing.
    const net::NodeId victim = 1 + rng.NextBelow(4);
    int extra_outstanding = 0;
    for (int i = 0; i < 20; ++i) {
      const Key key = "racing-" + std::to_string(i);
      ++extra_outstanding;
      cluster.client(1).Put(key,
                            std::make_shared<Buffer>(EncodeValue(key, i, 500)),
                            rep3, [&](Status, Version) {
                              --extra_outstanding;
                            });
    }
    cluster.KillNode(victim, /*force_detect=*/true);
    cluster.RunFor(20 * sim::kMillisecond);

    // Every value committed before the failure must read back byte-exactly.
    for (const auto& [key, value] : committed) {
      auto got = cluster.Get(key);
      ASSERT_TRUE(got.ok()) << key << " victim=" << victim;
      EXPECT_EQ(*got, value) << key;
    }
    cluster.RunUntilDone([&] { return extra_outstanding == 0; },
                         50'000'000);
  }
}

}  // namespace
}  // namespace ring
