#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/gf/gf256.h"
#include "src/matrix/matrix.h"

namespace ring::gf {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, ring::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m.Set(i, j, static_cast<uint8_t>(rng.NextU64()));
    }
  }
  return m;
}

TEST(MatrixTest, IdentityMultiplication) {
  ring::Rng rng(1);
  Matrix a = RandomMatrix(4, 4, rng);
  Matrix i = Matrix::Identity(4);
  EXPECT_EQ(a.Multiply(i), a);
  EXPECT_EQ(i.Multiply(a), a);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  // GF(2^8): c[0][0] = 1*5 ^ 2*7 = 5 ^ 14 = 11
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c.At(0, 0), Add(Mul(1, 5), Mul(2, 7)));
  EXPECT_EQ(c.At(0, 1), Add(Mul(1, 6), Mul(2, 8)));
  EXPECT_EQ(c.At(1, 0), Add(Mul(3, 5), Mul(4, 7)));
  EXPECT_EQ(c.At(1, 1), Add(Mul(3, 6), Mul(4, 8)));
}

TEST(MatrixTest, MultiplyAssociativeSampled) {
  ring::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = RandomMatrix(3, 4, rng);
    Matrix b = RandomMatrix(4, 5, rng);
    Matrix c = RandomMatrix(5, 2, rng);
    EXPECT_EQ(a.Multiply(b).Multiply(c), a.Multiply(b.Multiply(c)));
  }
}

TEST(MatrixTest, InverseRoundTrip) {
  ring::Rng rng(3);
  int invertible = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Matrix a = RandomMatrix(5, 5, rng);
    auto inv = a.Inverse();
    if (!inv.ok()) {
      continue;  // random matrices can be singular
    }
    ++invertible;
    EXPECT_EQ(a.Multiply(*inv), Matrix::Identity(5));
    EXPECT_EQ(inv->Multiply(a), Matrix::Identity(5));
  }
  // Over GF(256), random 5x5 matrices are invertible w.p. ~0.996.
  EXPECT_GT(invertible, 40);
}

TEST(MatrixTest, SingularMatrixFailsToInvert) {
  Matrix a{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}};  // row1 = 2*row0 in GF? 2*2=4, 2*3=6 yes
  auto inv = a.Inverse();
  EXPECT_FALSE(inv.ok());
  EXPECT_EQ(inv.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MatrixTest, NonSquareInverseRejected) {
  Matrix a(2, 3);
  EXPECT_FALSE(a.Inverse().ok());
}

TEST(MatrixTest, ZeroMatrixNotInvertible) {
  Matrix z(3, 3);
  EXPECT_FALSE(z.Inverse().ok());
}

TEST(MatrixTest, RankFullAndDeficient) {
  EXPECT_EQ(Matrix::Identity(6).Rank(), 6u);
  Matrix z(4, 4);
  EXPECT_EQ(z.Rank(), 0u);
  Matrix a{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}};
  EXPECT_EQ(a.Rank(), 2u);
  Matrix wide{{1, 0, 0, 1}, {0, 1, 0, 1}};
  EXPECT_EQ(wide.Rank(), 2u);
}

TEST(MatrixTest, RankOfProductBounded) {
  ring::Rng rng(4);
  Matrix a = RandomMatrix(4, 2, rng);
  Matrix b = RandomMatrix(2, 4, rng);
  EXPECT_LE(a.Multiply(b).Rank(), 2u);
}

TEST(MatrixTest, SelectRowsAndVStack) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix sel = a.SelectRows({2, 0});
  EXPECT_EQ(sel, (Matrix{{5, 6}, {1, 2}}));
  Matrix b{{7, 8}};
  Matrix st = a.VStack(b);
  EXPECT_EQ(st.rows(), 4u);
  EXPECT_EQ(st.At(3, 0), 7);
  EXPECT_EQ(st.At(3, 1), 8);
}

TEST(MatrixTest, VandermondeAnyKRowsIndependent) {
  // The defining property used for RS codes: any k rows of the (n x k)
  // Vandermonde matrix are linearly independent.
  const size_t n = 7;
  const size_t k = 3;
  Matrix v = Matrix::Vandermonde(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      for (size_t l = j + 1; l < n; ++l) {
        Matrix sub = v.SelectRows({i, j, l});
        EXPECT_EQ(sub.Rank(), k) << i << "," << j << "," << l;
      }
    }
  }
}

TEST(MatrixTest, ToStringRenders) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a.ToString(), "1 2\n3 4\n");
}

}  // namespace
}  // namespace ring::gf
