// Adaptive resilience manager (src/policy): sketch accuracy, EWMA
// temperatures, hysteresis/anti-flapping, token-bucket pacing under failure
// injection, and end-to-end hot/cold convergence with reheating.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/common/rng.h"
#include "src/fault/fault.h"
#include "src/policy/autotier.h"

namespace ring {
namespace {

using policy::AccessTracker;
using policy::AccessTrackerOptions;
using policy::AutoTierManager;
using policy::AutoTierOptions;
using policy::CountMinSketch;
using policy::Mover;
using policy::MoverOptions;
using policy::PolicyEngine;
using policy::PolicyMode;
using policy::PolicyOptions;
using policy::Tier;

TEST(CountMinSketchTest, NeverUnderestimatesAndBoundsOverestimate) {
  CountMinSketch sketch(512, 4);
  std::map<std::string, uint64_t> truth;
  // Zipf-ish counts over 400 keys: a few heavy hitters, a long tail.
  for (int k = 0; k < 400; ++k) {
    const std::string key = "cms-" + std::to_string(k);
    const uint64_t n = 1 + 2000 / (k + 1);
    truth[key] = n;
    sketch.Add(key, n);
  }
  // Count-min guarantees: no underestimate, and the overestimate is a small
  // multiple of total/width (Markov per row, min over depth rows).
  const uint64_t slack = 8 * sketch.total() / sketch.width();
  for (const auto& [key, n] : truth) {
    const uint64_t est = sketch.Estimate(key);
    EXPECT_GE(est, n) << key;
    EXPECT_LE(est, n + slack) << key;
  }
  sketch.Clear();
  EXPECT_EQ(sketch.Estimate("cms-0"), 0u);
  EXPECT_EQ(sketch.total(), 0u);
}

TEST(AccessTrackerTest, EwmaFollowsAccessRateAndDecays) {
  AccessTrackerOptions o;
  o.ewma_alpha = 0.5;
  AccessTracker tracker(o);
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 16; ++i) {
      tracker.Record("hot");
    }
    if (epoch == 0) {
      tracker.Record("cold");
    }
    tracker.EndEpoch();
  }
  // "hot" converges toward its per-epoch rate; "cold" halves every epoch
  // after its single access.
  EXPECT_GT(tracker.Temperature("hot"), 12.0);
  EXPECT_LE(tracker.Temperature("hot"), 16.0);
  EXPECT_LT(tracker.Temperature("cold"), 0.2);
  EXPECT_EQ(tracker.Temperature("never-seen"), 0.0);
  // Decayed-to-nothing entries are dropped entirely.
  for (int epoch = 0; epoch < 12; ++epoch) {
    tracker.EndEpoch();
  }
  EXPECT_EQ(tracker.Temperature("cold"), 0.0);
}

TEST(AccessTrackerTest, TrackedKeysStaySpaceBounded) {
  AccessTrackerOptions o;
  o.max_tracked_keys = 64;
  AccessTracker tracker(o);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int k = 0; k < 500; ++k) {
      tracker.Record("sb-" + std::to_string(1000 * epoch + k));
    }
    tracker.EndEpoch();
    EXPECT_LE(tracker.tracked(), 64u);
  }
}

Tier HotTier(MemgestId id) {
  return Tier{id, MemgestDescriptor::Replicated(3),
              cost::PriceTable{}.hot};
}
Tier ColdTier(MemgestId id) {
  return Tier{id, MemgestDescriptor::ErasureCoded(3, 2),
              cost::PriceTable{}.cool};
}

TEST(PolicyEngineTest, HysteresisPreventsFlapping) {
  PolicyOptions o;
  o.hot_enter = 8.0;
  o.cold_enter = 2.0;
  PolicyEngine engine({HotTier(0), ColdTier(1)}, o);

  // Temperature oscillating inside the band never moves the key, starting
  // from either tier.
  for (MemgestId start : {MemgestId{0}, MemgestId{1}}) {
    MemgestId cur = start;
    int moves = 0;
    for (int i = 0; i < 50; ++i) {
      const double temp = (i % 2 == 0) ? 3.0 : 7.0;
      if (auto d = engine.Decide(temp, 1024, cur)) {
        ++moves;
        cur = *d;
      }
    }
    EXPECT_EQ(moves, 0) << "flapped from tier " << start;
  }
  // Crossing the thresholds does move — once per crossing, not per epoch.
  EXPECT_EQ(engine.Decide(1.0, 1024, 0), std::optional<MemgestId>(1));
  EXPECT_EQ(engine.Decide(9.0, 1024, 1), std::optional<MemgestId>(0));
  EXPECT_EQ(engine.Decide(9.0, 1024, 0), std::nullopt);  // already hot
  EXPECT_EQ(engine.Decide(1.0, 1024, 1), std::nullopt);  // already cold
}

TEST(PolicyEngineTest, CostObjectivePricesPlacements) {
  PolicyOptions o;
  o.mode = PolicyMode::kCostObjective;
  o.cost_margin = 0.10;
  o.ops_per_month_per_temp = 1.0e6;
  PolicyEngine engine({HotTier(0), ColdTier(1)}, o);

  const uint64_t mb = 1 << 20;
  // An idle object is cheaper erasure-coded (1.67x storage at the cool
  // price beats 3x at the hot price); a busy one is cheaper replicated
  // (cool reads carry per-op + retrieval charges).
  EXPECT_EQ(engine.Decide(0.0, 64 * mb, 0), std::optional<MemgestId>(1));
  EXPECT_EQ(engine.Decide(50.0, 64 * mb, 1), std::optional<MemgestId>(0));
  // Near the indifference point the margin keeps the key where it is.
  const double hot_cost = engine.PlacementCost(HotTier(0), 1.0, 64 * mb);
  const double cold_cost = engine.PlacementCost(ColdTier(1), 1.0, 64 * mb);
  EXPECT_GT(hot_cost, 0.0);
  EXPECT_GT(cold_cost, 0.0);
  // Sweep temperatures: each decision must be stable (deciding twice from
  // the suggested placement never bounces straight back).
  for (double temp = 0.0; temp < 60.0; temp += 1.5) {
    for (MemgestId cur : {MemgestId{0}, MemgestId{1}}) {
      if (auto d = engine.Decide(temp, 64 * mb, cur)) {
        EXPECT_EQ(engine.Decide(temp, 64 * mb, *d), std::nullopt)
            << "cost flap at temp " << temp;
      }
    }
  }
}

TEST(MoverTest, TokenBucketHonorsRateUnderFailureInjection) {
  RingOptions options;
  options.s = 3;
  options.d = 2;
  options.spares = 1;
  options.clients = 2;
  options.seed = 11;
  RingCluster cluster(options);
  const MemgestId rep3 =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const MemgestId srs32 =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));

  const int kKeys = 40;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(cluster
                    .Put("tb-" + std::to_string(i),
                         MakePatternBuffer(512, i), rep3)
                    .ok());
  }

  MoverOptions mo;
  mo.moves_per_sec = 2000.0;
  mo.burst = 4.0;
  mo.max_concurrent = 2;
  mo.client_index = 1;
  Mover mover(&cluster, mo);
  const sim::SimTime start = cluster.simulator().now();
  for (int i = 0; i < kKeys; ++i) {
    mover.Enqueue("tb-" + std::to_string(i), srs32);
  }
  EXPECT_EQ(mover.scheduled(), static_cast<uint64_t>(kKeys));

  // Tick every 100 us; kill a coordinator a third of the way through so
  // some moves ride through a failover (and get retried by the mover).
  bool killed = false;
  for (int tick = 0; tick < 1200 && !mover.idle(); ++tick) {
    cluster.RunFor(100 * sim::kMicrosecond);
    if (!killed && tick == 80) {
      cluster.KillNode(1, /*force_detect=*/true);
      killed = true;
    }
    mover.Tick();
  }
  ASSERT_TRUE(mover.idle());
  EXPECT_TRUE(killed);

  // Every scheduled move reached a terminal state, and despite the failure
  // the vast majority completed (aborts only if retries were exhausted).
  EXPECT_EQ(mover.completed() + mover.aborted(),
            static_cast<uint64_t>(kKeys));
  EXPECT_GE(mover.completed(), static_cast<uint64_t>(kKeys - 4));

  // The token bucket bound: launches (including retries — each consumes a
  // token) never exceed rate * elapsed + burst.
  const double elapsed_sec =
      static_cast<double>(cluster.simulator().now() - start) / 1e9;
  EXPECT_LE(static_cast<double>(mover.launched()),
            mo.moves_per_sec * elapsed_sec + mo.burst + 1e-6);

  // The moved data survived re-tiering byte-exactly.
  for (int i = 0; i < kKeys; i += 7) {
    auto got = cluster.Get("tb-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, MakePatternBuffer(512, i)) << i;
  }
}

TEST(MoverTest, AbortsCleanlyWhenPartitionedFromTheCluster) {
  RingOptions options;
  options.s = 3;
  options.d = 2;
  options.spares = 1;
  options.clients = 2;
  options.seed = 23;
  // The mover's client (node 7) is cut off from every server until 200 ms;
  // the foreground client (node 6) is unaffected, so setup traffic and the
  // post-mortem reads below go through normally.
  options.fault_plan =
      *fault::ParseFaultPlan("partition a=7 b=0,1,2,3,4,5 at=0 heal=200ms");
  options.fault_seed = 23;
  RingCluster cluster(options);
  const MemgestId rep3 =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const MemgestId srs32 =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));

  const int kKeys = 4;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(cluster
                    .Put("pa-" + std::to_string(i),
                         MakePatternBuffer(256, i), rep3)
                    .ok());
  }

  MoverOptions mo;
  mo.max_retries = 2;
  mo.retry_backoff_ns = 1 * sim::kMillisecond;
  mo.client_index = 1;
  Mover mover(&cluster, mo);
  for (int i = 0; i < kKeys; ++i) {
    mover.Enqueue("pa-" + std::to_string(i), srs32);
  }
  // Each attempt burns the client retry budget (20 ms) before surfacing
  // kUnavailable; two attempts per move finish well before the heal.
  for (int tick = 0; tick < 1800 && !mover.idle(); ++tick) {
    cluster.RunFor(100 * sim::kMicrosecond);
    mover.Tick();
  }
  ASSERT_TRUE(mover.idle());
  EXPECT_LT(cluster.simulator().now(), 180 * sim::kMillisecond);
  EXPECT_EQ(mover.aborted(), static_cast<uint64_t>(kKeys));
  EXPECT_EQ(mover.completed(), 0u);
  EXPECT_EQ(mover.retried(), static_cast<uint64_t>(kKeys));

  // Aborting is safe: the keys keep their scheme and bytes.
  for (int i = 0; i < kKeys; ++i) {
    auto got = cluster.Get("pa-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, MakePatternBuffer(256, i)) << i;
  }

  // After the partition heals the same mover client works again.
  cluster.RunFor(210 * sim::kMillisecond - cluster.simulator().now());
  mover.Enqueue("pa-0", srs32);
  for (int tick = 0; tick < 600 && !mover.idle(); ++tick) {
    cluster.RunFor(100 * sim::kMicrosecond);
    mover.Tick();
  }
  ASSERT_TRUE(mover.idle());
  EXPECT_EQ(mover.completed(), 1u);
  auto moved = cluster.Get("pa-0");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, MakePatternBuffer(256, 0));
}

TEST(AutoTierManagerTest, ConvergesOnHotColdSplitAndReheats) {
  RingOptions options;
  options.s = 3;
  options.d = 2;
  options.spares = 0;
  options.clients = 1;
  options.seed = 5;
  RingCluster cluster(options);
  const MemgestId rep3 =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const MemgestId srs32 =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));

  AutoTierOptions ao;
  ao.epoch_ns = 5 * sim::kMillisecond;
  ao.policy.hot_enter = 8.0;
  ao.policy.cold_enter = 2.0;
  ao.mover.moves_per_sec = 5000.0;
  AutoTierManager manager(&cluster,
                          {Tier{rep3, MemgestDescriptor::Replicated(3),
                                cost::PriceTable{}.hot},
                           Tier{srs32, MemgestDescriptor::ErasureCoded(3, 2),
                                cost::PriceTable{}.cool}},
                          ao);

  const int kKeys = 40;
  const int kHot = 8;
  auto key_of = [](int i) { return "at-" + std::to_string(i); };
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(cluster.Put(key_of(i), MakePatternBuffer(2048, i), rep3).ok());
  }
  auto live_bytes = [&] {
    uint64_t total = 0;
    for (net::NodeId n = 0; n < 5; ++n) {
      total += cluster.server(n).LiveBytes();
    }
    return total;
  };
  const uint64_t all_hot_bytes = live_bytes();

  manager.Start();
  // Several epochs of gets concentrated on the hot subset: hot keys stay
  // replicated, the cold majority is demoted to erasure coding.
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (int rep = 0; rep < 12; ++rep) {
      for (int i = 0; i < kHot; ++i) {
        ASSERT_TRUE(cluster.Get(key_of(i)).ok());
      }
    }
    cluster.RunFor(5 * sim::kMillisecond);
  }
  // Drain in-flight moves; short enough that the idle epochs only decay the
  // hot keys into the hysteresis band, not past the demotion threshold.
  cluster.RunFor(8 * sim::kMillisecond);

  for (int i = 0; i < kHot; ++i) {
    EXPECT_EQ(manager.PlacementOf(key_of(i)), rep3) << "hot key " << i;
  }
  int cold_moved = 0;
  for (int i = kHot; i < kKeys; ++i) {
    cold_moved += manager.PlacementOf(key_of(i)) == srs32 ? 1 : 0;
  }
  EXPECT_EQ(cold_moved, kKeys - kHot);
  // Cluster memory actually dropped: 32 of 40 keys now cost 1.67x instead
  // of 3x.
  const uint64_t tiered_bytes = live_bytes();
  EXPECT_LT(static_cast<double>(tiered_bytes),
            0.75 * static_cast<double>(all_hot_bytes));
  EXPECT_GT(manager.mover().completed(), 0u);
  EXPECT_EQ(manager.mover().aborted(), 0u);

  // Reheat a demoted key: sustained accesses promote it back, bytes intact.
  const Key reheat = key_of(20);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int rep = 0; rep < 12; ++rep) {
      ASSERT_TRUE(cluster.Get(reheat).ok());
    }
    cluster.RunFor(5 * sim::kMillisecond);
  }
  cluster.RunFor(8 * sim::kMillisecond);
  EXPECT_EQ(manager.PlacementOf(reheat), rep3);
  auto got = cluster.Get(reheat);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakePatternBuffer(2048, 20));
  manager.Stop();

  // The obs gauges reflect the managed population (metrics were enabled by
  // the obs layer only if the harness turned them on; enable + tick once).
  cluster.simulator().hub().EnableMetrics(true);
  manager.Tick();
  const auto& metrics = cluster.simulator().hub().metrics();
  EXPECT_EQ(metrics.GaugeValue("policy.managed_keys",
                               cluster.client(0).node()),
            static_cast<int64_t>(kKeys));
  EXPECT_GT(metrics.GaugeValue("policy.realized_storage_bytes",
                               cluster.client(0).node()),
            0);
}

}  // namespace
}  // namespace ring
