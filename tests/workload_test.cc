#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "src/workload/drivers.h"
#include "src/workload/spc_trace.h"
#include "src/workload/ycsb.h"
#include "src/workload/zipf.h"

namespace ring::workload {
namespace {

TEST(ZipfTest, RanksStayInRange) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfGenerator zipf(10000, 0.99);
  Rng rng(2);
  const int n = 100000;
  int rank0 = 0;
  int top10 = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t rank = zipf.Next(rng);
    rank0 += rank == 0;
    top10 += rank < 10;
  }
  // YCSB's zipfian(0.99) puts ~10% of mass on rank 0 for n=10k and roughly
  // a quarter on the top 10.
  EXPECT_GT(rank0, n / 20);
  EXPECT_GT(top10, n / 6);
  EXPECT_LT(rank0, n / 2);
}

TEST(ZipfTest, LowThetaApproachesUniform) {
  ZipfGenerator zipf(100, 0.01);
  Rng rng(3);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(rng)]++;
  }
  // Every rank drawn; the most popular below 4x the mean.
  EXPECT_EQ(counts.size(), 100u);
  int max_count = 0;
  for (const auto& [rank, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_LT(max_count, 4 * n / 100);
}

TEST(YcsbTest, KeyShapeAndMixture) {
  YcsbSpec spec;
  spec.num_keys = 100;
  spec.key_len = 8;
  spec.get_fraction = 0.95;
  YcsbWorkload workload(spec, 11);
  int gets = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Op op = workload.Next();
    ASSERT_EQ(op.key.size(), 8u);  // paper: 8-byte keys
    gets += op.kind == OpKind::kGet;
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.95, 0.01);
}

TEST(YcsbTest, DeterministicStream) {
  YcsbSpec spec;
  spec.num_keys = 50;
  YcsbWorkload a(spec, 5);
  YcsbWorkload b(spec, 5);
  for (int i = 0; i < 100; ++i) {
    const Op x = a.Next();
    const Op y = b.Next();
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.kind, y.kind);
  }
}

TEST(SpcTraceTest, ParseWellFormed) {
  std::istringstream in(
      "0,1234,4096,R,0.5\n"
      "1,99,512,w,1.25\n"
      "\n"
      "2,0,8192,W,2.0,extra,fields\n");
  auto records = ParseSpcTrace(in);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].opcode, 'R');
  EXPECT_EQ((*records)[1].opcode, 'W');
  EXPECT_EQ((*records)[1].size, 512u);
  EXPECT_DOUBLE_EQ((*records)[2].timestamp, 2.0);
}

TEST(SpcTraceTest, ParseRejectsMalformed) {
  std::istringstream bad1("0,1234\n");
  EXPECT_FALSE(ParseSpcTrace(bad1).ok());
  std::istringstream bad2("0,1234,4096,X,0.5\n");
  EXPECT_FALSE(ParseSpcTrace(bad2).ok());
  std::istringstream bad3("a,b,c,R,d\n");
  EXPECT_FALSE(ParseSpcTrace(bad3).ok());
}

TEST(SpcTraceTest, FormatParseRoundTrip) {
  auto trace = SyntheticTrace("Financial1", 500, 3);
  ASSERT_EQ(trace.size(), 500u);
  std::istringstream in(FormatSpcTrace(trace));
  auto parsed = ParseSpcTrace(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*parsed)[i].lba, trace[i].lba);
    EXPECT_EQ((*parsed)[i].size, trace[i].size);
    EXPECT_EQ((*parsed)[i].opcode, trace[i].opcode);
  }
}

TEST(SpcTraceTest, SyntheticMatchesProfiles) {
  auto fin = Aggregate("Financial1", SyntheticTrace("Financial1", 20000, 7));
  EXPECT_NEAR(fin.write_fraction(), 0.77, 0.02);
  auto web = Aggregate("WebSearch1", SyntheticTrace("WebSearch1", 20000, 7));
  EXPECT_NEAR(web.write_fraction(), 0.01, 0.01);
  // WebSearch ops are much larger on average.
  EXPECT_GT(static_cast<double>(web.read_bytes) / web.reads,
            2.0 * static_cast<double>(fin.written_bytes) / fin.writes);
}

TEST(SpcTraceTest, UnknownProfileEmpty) {
  EXPECT_TRUE(SyntheticTrace("NoSuchTrace", 100).empty());
}

TEST(SpcTraceTest, PaperAggregatesOrdered) {
  const auto traces = PaperTraceAggregates();
  ASSERT_EQ(traces.size(), 5u);
  EXPECT_EQ(traces[0].name, "Financial1");
  EXPECT_EQ(traces[4].name, "WebSearch3");
  EXPECT_GT(traces[0].write_fraction(), 0.7);   // put-heavy OLTP
  EXPECT_LT(traces[2].write_fraction(), 0.05);  // get-dominated search
}

TEST(AggregateTest, FootprintCountsDistinctPages) {
  std::vector<SpcRecord> records = {
      {0, 0, 4096, 'W', 0.0},     // page 0
      {0, 0, 4096, 'R', 1.0},     // page 0 again
      {0, 8, 4096, 'W', 2.0},     // lba 8 * 512 = page 1
      {0, 16, 8192, 'W', 3.0},    // pages 2..3
  };
  const auto agg = Aggregate("t", records);
  EXPECT_EQ(agg.footprint_bytes, 4u * 4096);
  EXPECT_EQ(agg.reads, 1u);
  EXPECT_EQ(agg.writes, 3u);
  EXPECT_DOUBLE_EQ(agg.duration_sec, 3.0);
}

// ---------------------------------------------------------------------------
// Drivers against a live cluster

TEST(DriversTest, ClosedLoopMeasuresLatency) {
  RingCluster cluster{RingOptions{}};
  auto g = cluster.CreateMemgest(MemgestDescriptor::Replicated(1));
  ASSERT_TRUE(g.ok());
  ClosedLoopDriver driver(&cluster);
  auto latencies = driver.MeasurePutLatency(*g, 1024, 50);
  ASSERT_EQ(latencies.count(), 50u);
  EXPECT_GT(latencies.Median(), 1.0);   // at least wire RTT
  EXPECT_LT(latencies.Median(), 50.0);  // and far below a TCP system
}

TEST(DriversTest, OpenLoopTracksCompletions) {
  RingOptions o;
  o.params.client_retry_timeout_ns = 100 * sim::kMillisecond;
  RingCluster cluster(o);
  auto g = cluster.CreateMemgest(MemgestDescriptor::Replicated(1));
  ASSERT_TRUE(g.ok());
  OpenLoopDriver::Options opt;
  opt.rate_per_sec = 50'000;
  opt.memgest = *g;
  opt.spec.num_keys = 100;
  opt.spec.get_fraction = 0.5;
  OpenLoopDriver driver(&cluster, 0, opt);
  driver.Start();
  cluster.RunFor(100 * sim::kMillisecond);
  driver.Stop();
  cluster.RunFor(5 * sim::kMillisecond);
  // ~5000 ops at this rate; all issued ops complete (far from saturation).
  EXPECT_NEAR(static_cast<double>(driver.issued()), 5000.0, 100.0);
  EXPECT_EQ(driver.completed(), driver.issued());
  EXPECT_EQ(driver.errors(), 0u);
}

TEST(DriversTest, OpenLoopShedsLoadAtSaturation) {
  RingOptions o;
  o.params.client_retry_timeout_ns = 500 * sim::kMillisecond;
  RingCluster cluster(o);
  auto g = cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));
  ASSERT_TRUE(g.ok());
  OpenLoopDriver::Options opt;
  opt.rate_per_sec = 2'000'000;  // far beyond capacity
  opt.max_outstanding = 64;
  opt.memgest = *g;
  opt.spec.num_keys = 500;
  opt.spec.get_fraction = 0.0;
  OpenLoopDriver driver(&cluster, 0, opt);
  driver.Start();
  cluster.RunFor(50 * sim::kMillisecond);
  driver.Stop();
  EXPECT_GT(driver.dropped(), 0u);  // window-based flow control engaged
  EXPECT_GT(driver.completed(), 1000u);
}

}  // namespace
}  // namespace ring::workload
