#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/net/fabric.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ring::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&order, i] { order.push_back(i); });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(50, [&] {
    order.push_back(1);
    q.Schedule(10, [&] { order.push_back(2); });  // in the past -> now
  });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      q.Schedule(q.now() + 5, recurse);
    }
  };
  q.Schedule(0, recurse);
  while (q.RunNext()) {
  }
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now(), 45u);
}

// The calendar queue and the legacy binary heap must execute any schedule
// in exactly the same order. This mix spans all three calendar tiers (fine
// wheel < ~2 ms, coarse wheel < ~8.6 s, overflow beyond) plus same-time
// ties, and includes events scheduled from within far-future events — the
// AdvanceWindow re-homing paths.
TEST(EventQueueTest, SchedulersProduceIdenticalOrder) {
  auto run = [](EventQueue::Mode mode) {
    EventQueue q(mode);
    std::vector<uint64_t> order;
    uint64_t x = 0x9e3779b97f4a7c15ull;  // xorshift: same stream both runs
    auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    for (uint64_t i = 0; i < 200; ++i) {
      SimTime t = 0;
      switch (i % 4) {
        case 0: t = next() % (2 * kMillisecond); break;
        case 1: t = next() % (500 * kMillisecond); break;
        case 2: t = 9 * kSecond + next() % (30 * kSecond); break;
        default: t = 100 * kMicrosecond; break;  // ties, seq-ordered
      }
      q.Schedule(t, [&order, i] { order.push_back(i); });
    }
    q.Schedule(15 * kSecond, [&q, &order] {
      order.push_back(1000);
      q.Schedule(q.now() + 100, [&order] { order.push_back(1001); });
      q.Schedule(q.now() + 40 * kSecond, [&order] { order.push_back(1002); });
    });
    while (q.RunNext()) {
    }
    return order;
  };
  const std::vector<uint64_t> calendar = run(EventQueue::Mode::kCalendar);
  const std::vector<uint64_t> heap = run(EventQueue::Mode::kHeap);
  EXPECT_EQ(calendar.size(), 203u);
  EXPECT_EQ(calendar, heap);
}

TEST(EventQueueTest, CoarseAndOverflowTiersRunInOrder) {
  EventQueue q(EventQueue::Mode::kCalendar);
  std::vector<int> order;
  q.Schedule(20 * kSecond, [&] { order.push_back(4); });   // overflow tier
  q.Schedule(100 * kMillisecond, [&] { order.push_back(2); });  // coarse
  q.Schedule(kMicrosecond, [&] { order.push_back(1); });        // fine wheel
  q.Schedule(5 * kSecond, [&] { order.push_back(3); });         // coarse
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.now(), 20 * kSecond);
  EXPECT_EQ(q.depth_high_water(), 4u);
}

TEST(EventQueueTest, FarFutureEventCanScheduleNearFuture) {
  // After the window jumps to an overflow event, newly scheduled
  // microsecond-scale work must still run before parked coarse timers.
  EventQueue q(EventQueue::Mode::kCalendar);
  std::vector<int> order;
  q.Schedule(10 * kSecond, [&] {
    order.push_back(1);
    q.Schedule(q.now() + 500, [&] { order.push_back(2); });
  });
  q.Schedule(10 * kSecond + 50 * kMillisecond, [&] { order.push_back(3); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TaskTest, SmallCapturesStayInline) {
  TaskPool::ResetStats();
  int x = 0;
  Task t([&x] { ++x; });
  t();
  EXPECT_EQ(x, 1);
  const TaskPool::Stats s = TaskPool::stats();
  EXPECT_EQ(s.inline_ctors, 1u);
  EXPECT_EQ(s.pool_hits + s.pool_misses, 0u);
  EXPECT_EQ(s.hit_rate_pct(), 100u);
}

TEST(TaskTest, LargeCapturesUseThePoolAndRecycle) {
  TaskPool::ResetStats();
  std::array<unsigned char, 64> payload{};
  payload[0] = 41;
  int out = 0;
  {
    Task t([payload, &out] { out = payload[0] + 1; });
    t();
  }
  EXPECT_EQ(out, 42);
  {
    // The first block was returned to its free list; this one reuses it.
    Task t([payload, &out] { out = payload[0] + 2; });
    t();
  }
  EXPECT_EQ(out, 43);
  const TaskPool::Stats s = TaskPool::stats();
  EXPECT_EQ(s.inline_ctors, 0u);
  EXPECT_EQ(s.pool_hits + s.pool_misses, 2u);
  EXPECT_GE(s.pool_hits, 1u);  // the recycled block is always a hit
}

TEST(TaskTest, MoveTransfersTheCallable) {
  std::array<unsigned char, 64> payload{};
  int out = 0;
  Task a([payload, &out] { ++out; });
  Task b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move state is API
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(out, 1);
}

TEST(TaskTest, CloneProducesIndependentCopy) {
  int sum = 0;
  Task original([v = std::vector<int>{1, 2, 3}, &sum]() mutable {
    v.push_back(0);
    sum += static_cast<int>(v.size());
  });
  Task copy = original.Clone();
  ASSERT_TRUE(copy);
  original();  // v grows to 4 in the original only
  original();  // ... then 5
  copy();      // the clone's v still starts at 3
  EXPECT_EQ(sum, 4 + 5 + 4);
}

TEST(TaskTest, NonCopyableCallableClonesToEmpty) {
  auto p = std::make_unique<int>(7);
  Task t([p = std::move(p)] { (void)*p; });
  EXPECT_TRUE(t);
  EXPECT_FALSE(t.Clone());
}

TEST(TaskTest, NullCallablesBecomeEmptyTasks) {
  std::function<void()> null_fn;
  Task from_function(null_fn);
  EXPECT_FALSE(from_function);
  void (*null_ptr)() = nullptr;
  Task from_pointer(null_ptr);
  EXPECT_FALSE(from_pointer);
  Task from_nullptr(nullptr);
  EXPECT_FALSE(from_nullptr);
}

TEST(SimulatorTest, RunUntilStopsAtTime) {
  Simulator simulator;
  int count = 0;
  for (SimTime t = 10; t <= 100; t += 10) {
    simulator.At(t, [&] { ++count; });
  }
  simulator.RunUntil(55);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(simulator.now(), 55u);
  simulator.RunUntil(200);
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator simulator;
  SimTime fired = 0;
  simulator.At(100, [&] {
    simulator.After(25, [&] { fired = simulator.now(); });
  });
  simulator.Run();
  EXPECT_EQ(fired, 125u);
}

TEST(CpuWorkerTest, SerializesWork) {
  Simulator simulator;
  CpuWorker cpu(&simulator);
  std::vector<SimTime> completions;
  // Three items of 100 ns submitted at t=0 complete at 100, 200, 300.
  for (int i = 0; i < 3; ++i) {
    cpu.Execute(100, [&] { completions.push_back(simulator.now()); });
  }
  simulator.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(cpu.consumed_ns(), 300u);
}

TEST(CpuWorkerTest, IdleGapsDoNotAccumulate) {
  Simulator simulator;
  CpuWorker cpu(&simulator);
  std::vector<SimTime> completions;
  cpu.Execute(100, [&] { completions.push_back(simulator.now()); });
  simulator.At(1000, [&] {
    cpu.Execute(100, [&] { completions.push_back(simulator.now()); });
  });
  simulator.Run();
  // Second item starts at 1000 (idle since 100), not at 200.
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 1100}));
}

TEST(CpuWorkerTest, BacklogReportsQueuedWork) {
  Simulator simulator;
  CpuWorker cpu(&simulator);
  cpu.Execute(500, [] {});
  cpu.Execute(500, [] {});
  EXPECT_EQ(cpu.backlog_ns(), 1000u);
  simulator.Run();
  EXPECT_EQ(cpu.backlog_ns(), 0u);
}

TEST(CpuWorkerTest, ResetCancelsScheduledCompletions) {
  Simulator simulator;
  CpuWorker cpu(&simulator);
  int ran = 0;
  cpu.Execute(100, [&] { ran += 1; });  // would complete at 100
  simulator.At(50, [&] {
    // Reset mid-flight: the completion above is already in the event queue
    // but must no-op (its generation is stale), and its captured state must
    // not fire. Fresh work after the reset runs normally.
    cpu.Reset();
    cpu.Execute(100, [&] { ran += 10; });  // completes at 150
  });
  simulator.Run();
  EXPECT_EQ(ran, 10);
  EXPECT_EQ(cpu.consumed_ns(), 100u);  // only the post-reset item counts
}

TEST(CpuWorkerTest, ShardsRunInParallel) {
  Simulator simulator;
  CpuWorker cpu(&simulator, /*node=*/0, /*shards=*/2);
  std::vector<SimTime> done;
  cpu.ExecuteOnShard(0, 100, [&] { done.push_back(simulator.now()); });
  cpu.ExecuteOnShard(1, 100, [&] { done.push_back(simulator.now()); });
  simulator.Run();
  // Independent cores: both items finish at 100, not serialized to 200.
  EXPECT_EQ(done, (std::vector<SimTime>{100, 100}));
  EXPECT_EQ(cpu.consumed_ns(), 200u);
  EXPECT_EQ(cpu.consumed_ns(0), 100u);
  EXPECT_EQ(cpu.consumed_ns(1), 100u);
  EXPECT_EQ(cpu.shard_count(), 2u);
  EXPECT_EQ(cpu.handoffs(), 0u);
}

TEST(CpuWorkerTest, CrossShardHandoffIsCountedAndCosted) {
  Simulator simulator;
  CpuWorker cpu(&simulator, /*node=*/0, /*shards=*/2);
  SimTime handed_off_done = 0;
  cpu.ExecuteOnShard(0, 100, [&] {
    // Running on shard 0, posting to shard 1: an explicit handoff that
    // pays the wakeup cost on top of the item itself.
    cpu.ExecuteOnShard(1, 100, [&] { handed_off_done = simulator.now(); });
  });
  simulator.Run();
  EXPECT_EQ(cpu.handoffs(), 1u);
  EXPECT_EQ(handed_off_done,
            200 + simulator.params().cross_shard_handoff_ns);
}

TEST(CpuWorkerTest, ShardForHashIsStableAndInRange) {
  Simulator simulator;
  CpuWorker single(&simulator);
  CpuWorker multi(&simulator, /*node=*/1, /*shards=*/4);
  for (uint64_t h : {0ull, 1ull, 12345ull, ~0ull}) {
    EXPECT_EQ(single.ShardForHash(h), 0u);
    EXPECT_LT(multi.ShardForHash(h), 4u);
    EXPECT_EQ(multi.ShardForHash(h), multi.ShardForHash(h));
  }
}

}  // namespace
}  // namespace ring::sim

namespace ring::net {
namespace {

using sim::SimTime;

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : simulator_(1), fabric_(&simulator_, 4) {}
  sim::Simulator simulator_;
  Fabric fabric_;
};

TEST_F(FabricTest, SendLatencyMatchesModel) {
  SimTime delivered = 0;
  fabric_.Send(0, 1, 1024, [&] { delivered = simulator_.now(); });
  simulator_.Run();
  const auto& p = simulator_.params();
  const uint64_t expected =
      fabric_.SerializationNs(1024) + p.wire_latency_ns + p.server_recv_ns;
  EXPECT_EQ(delivered, expected);
}

TEST_F(FabricTest, EgressSerializesBackToBackMessages) {
  std::vector<SimTime> arrivals;
  // Two 5 KiB messages from the same source: the second departs only after
  // the first finishes serializing.
  fabric_.Send(0, 1, 5120, [&] { arrivals.push_back(simulator_.now()); });
  fabric_.Send(0, 2, 5120, [&] { arrivals.push_back(simulator_.now()); });
  simulator_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], fabric_.SerializationNs(5120));
}

TEST_F(FabricTest, DistinctSourcesDoNotSerialize) {
  std::vector<SimTime> arrivals;
  fabric_.Send(0, 2, 5120, [&] { arrivals.push_back(simulator_.now()); });
  fabric_.Send(1, 3, 5120, [&] { arrivals.push_back(simulator_.now()); });
  simulator_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);
}

TEST_F(FabricTest, DeadDestinationDropsMessage) {
  bool delivered = false;
  fabric_.Kill(1);
  fabric_.Send(0, 1, 64, [&] { delivered = true; });
  simulator_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(FabricTest, DeadSourceSendsNothing) {
  bool delivered = false;
  fabric_.Kill(0);
  fabric_.Send(0, 1, 64, [&] { delivered = true; });
  simulator_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(fabric_.messages_sent(), 0u);
}

TEST_F(FabricTest, NodeDyingInFlightDropsDelivery) {
  bool delivered = false;
  fabric_.Send(0, 1, 1 << 20, [&] { delivered = true; });
  // Kill the destination while the (large) message is in flight.
  simulator_.At(1000, [&] { fabric_.Kill(1); });
  simulator_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(FabricTest, WriteBypassesRemoteCpu) {
  // Saturate node 1's CPU; an RDMA write must still apply on time, while a
  // two-sided send queues behind the CPU work.
  fabric_.cpu(1).Execute(1'000'000, [] {});
  SimTime write_applied = 0;
  SimTime send_handled = 0;
  fabric_.Write(0, 1, 256, [&] { write_applied = simulator_.now(); }, nullptr);
  fabric_.Send(0, 1, 256, [&] { send_handled = simulator_.now(); });
  simulator_.Run();
  EXPECT_LT(write_applied, 10'000u);
  EXPECT_GT(send_handled, 1'000'000u);
}

TEST_F(FabricTest, WriteCompletionAfterRoundTrip) {
  SimTime applied = 0;
  SimTime completed = 0;
  fabric_.Write(0, 1, 128, [&] { applied = simulator_.now(); },
                [&] { completed = simulator_.now(); });
  simulator_.Run();
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(completed, applied + simulator_.params().wire_latency_ns);
}

TEST_F(FabricTest, ReadFetchesRemoteData) {
  int value = 0;
  int seen = -1;
  fabric_.Read(0, 1, 4096, [&] { value = 7; },
               [&] { seen = value; });
  simulator_.Run();
  EXPECT_EQ(seen, 7);
}

TEST_F(FabricTest, DeadTargetWriteNeverCompletes) {
  bool completed = false;
  fabric_.Kill(1);
  fabric_.Write(0, 1, 128, nullptr, [&] { completed = true; });
  simulator_.Run();
  EXPECT_FALSE(completed);
}

TEST_F(FabricTest, CountersTrackTraffic) {
  fabric_.Send(0, 1, 100, [] {});
  fabric_.Send(1, 0, 200, [] {});
  simulator_.Run();
  EXPECT_EQ(fabric_.messages_sent(), 2u);
  EXPECT_EQ(fabric_.bytes_sent(), 300u);
}

}  // namespace
}  // namespace ring::net
