#include <gtest/gtest.h>

#include <vector>

#include "src/net/fabric.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace ring::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&order, i] { order.push_back(i); });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(50, [&] {
    order.push_back(1);
    q.Schedule(10, [&] { order.push_back(2); });  // in the past -> now
  });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      q.Schedule(q.now() + 5, recurse);
    }
  };
  q.Schedule(0, recurse);
  while (q.RunNext()) {
  }
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now(), 45u);
}

TEST(SimulatorTest, RunUntilStopsAtTime) {
  Simulator simulator;
  int count = 0;
  for (SimTime t = 10; t <= 100; t += 10) {
    simulator.At(t, [&] { ++count; });
  }
  simulator.RunUntil(55);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(simulator.now(), 55u);
  simulator.RunUntil(200);
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator simulator;
  SimTime fired = 0;
  simulator.At(100, [&] {
    simulator.After(25, [&] { fired = simulator.now(); });
  });
  simulator.Run();
  EXPECT_EQ(fired, 125u);
}

TEST(CpuWorkerTest, SerializesWork) {
  Simulator simulator;
  CpuWorker cpu(&simulator);
  std::vector<SimTime> completions;
  // Three items of 100 ns submitted at t=0 complete at 100, 200, 300.
  for (int i = 0; i < 3; ++i) {
    cpu.Execute(100, [&] { completions.push_back(simulator.now()); });
  }
  simulator.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(cpu.consumed_ns(), 300u);
}

TEST(CpuWorkerTest, IdleGapsDoNotAccumulate) {
  Simulator simulator;
  CpuWorker cpu(&simulator);
  std::vector<SimTime> completions;
  cpu.Execute(100, [&] { completions.push_back(simulator.now()); });
  simulator.At(1000, [&] {
    cpu.Execute(100, [&] { completions.push_back(simulator.now()); });
  });
  simulator.Run();
  // Second item starts at 1000 (idle since 100), not at 200.
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 1100}));
}

TEST(CpuWorkerTest, BacklogReportsQueuedWork) {
  Simulator simulator;
  CpuWorker cpu(&simulator);
  cpu.Execute(500, [] {});
  cpu.Execute(500, [] {});
  EXPECT_EQ(cpu.backlog_ns(), 1000u);
  simulator.Run();
  EXPECT_EQ(cpu.backlog_ns(), 0u);
}

}  // namespace
}  // namespace ring::sim

namespace ring::net {
namespace {

using sim::SimTime;

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : simulator_(1), fabric_(&simulator_, 4) {}
  sim::Simulator simulator_;
  Fabric fabric_;
};

TEST_F(FabricTest, SendLatencyMatchesModel) {
  SimTime delivered = 0;
  fabric_.Send(0, 1, 1024, [&] { delivered = simulator_.now(); });
  simulator_.Run();
  const auto& p = simulator_.params();
  const uint64_t expected =
      fabric_.SerializationNs(1024) + p.wire_latency_ns + p.server_recv_ns;
  EXPECT_EQ(delivered, expected);
}

TEST_F(FabricTest, EgressSerializesBackToBackMessages) {
  std::vector<SimTime> arrivals;
  // Two 5 KiB messages from the same source: the second departs only after
  // the first finishes serializing.
  fabric_.Send(0, 1, 5120, [&] { arrivals.push_back(simulator_.now()); });
  fabric_.Send(0, 2, 5120, [&] { arrivals.push_back(simulator_.now()); });
  simulator_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], fabric_.SerializationNs(5120));
}

TEST_F(FabricTest, DistinctSourcesDoNotSerialize) {
  std::vector<SimTime> arrivals;
  fabric_.Send(0, 2, 5120, [&] { arrivals.push_back(simulator_.now()); });
  fabric_.Send(1, 3, 5120, [&] { arrivals.push_back(simulator_.now()); });
  simulator_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);
}

TEST_F(FabricTest, DeadDestinationDropsMessage) {
  bool delivered = false;
  fabric_.Kill(1);
  fabric_.Send(0, 1, 64, [&] { delivered = true; });
  simulator_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(FabricTest, DeadSourceSendsNothing) {
  bool delivered = false;
  fabric_.Kill(0);
  fabric_.Send(0, 1, 64, [&] { delivered = true; });
  simulator_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(fabric_.messages_sent(), 0u);
}

TEST_F(FabricTest, NodeDyingInFlightDropsDelivery) {
  bool delivered = false;
  fabric_.Send(0, 1, 1 << 20, [&] { delivered = true; });
  // Kill the destination while the (large) message is in flight.
  simulator_.At(1000, [&] { fabric_.Kill(1); });
  simulator_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(FabricTest, WriteBypassesRemoteCpu) {
  // Saturate node 1's CPU; an RDMA write must still apply on time, while a
  // two-sided send queues behind the CPU work.
  fabric_.cpu(1).Execute(1'000'000, [] {});
  SimTime write_applied = 0;
  SimTime send_handled = 0;
  fabric_.Write(0, 1, 256, [&] { write_applied = simulator_.now(); }, nullptr);
  fabric_.Send(0, 1, 256, [&] { send_handled = simulator_.now(); });
  simulator_.Run();
  EXPECT_LT(write_applied, 10'000u);
  EXPECT_GT(send_handled, 1'000'000u);
}

TEST_F(FabricTest, WriteCompletionAfterRoundTrip) {
  SimTime applied = 0;
  SimTime completed = 0;
  fabric_.Write(0, 1, 128, [&] { applied = simulator_.now(); },
                [&] { completed = simulator_.now(); });
  simulator_.Run();
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(completed, applied + simulator_.params().wire_latency_ns);
}

TEST_F(FabricTest, ReadFetchesRemoteData) {
  int value = 0;
  int seen = -1;
  fabric_.Read(0, 1, 4096, [&] { value = 7; },
               [&] { seen = value; });
  simulator_.Run();
  EXPECT_EQ(seen, 7);
}

TEST_F(FabricTest, DeadTargetWriteNeverCompletes) {
  bool completed = false;
  fabric_.Kill(1);
  fabric_.Write(0, 1, 128, nullptr, [&] { completed = true; });
  simulator_.Run();
  EXPECT_FALSE(completed);
}

TEST_F(FabricTest, CountersTrackTraffic) {
  fabric_.Send(0, 1, 100, [] {});
  fabric_.Send(1, 0, 200, [] {});
  simulator_.Run();
  EXPECT_EQ(fabric_.messages_sent(), 2u);
  EXPECT_EQ(fabric_.bytes_sent(), 300u);
}

}  // namespace
}  // namespace ring::net
