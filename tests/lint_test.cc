// Tests for ring-lint (src/analysis/lint.h): each text rule on inline
// snippets, the seeded-violation and allowlist fixtures, the build-graph
// orphan rule on a synthetic tree, and the real repo staying clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/lint.h"

#ifndef RING_SOURCE_ROOT
#error "lint_test requires RING_SOURCE_ROOT (set in tests/CMakeLists.txt)"
#endif

namespace ring::analysis {
namespace {

std::vector<std::string> RulesOf(const std::vector<LintFinding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) {
    rules.push_back(f.rule);
  }
  return rules;
}

bool HasRule(const std::vector<LintFinding>& findings,
             const std::string& rule) {
  for (const auto& f : findings) {
    if (f.rule == rule) {
      return true;
    }
  }
  return false;
}

std::vector<LintFinding> LintSnippet(const std::string& code,
                                     const std::string& relpath = "src/ring/"
                                                                  "x.cc") {
  SourceInput in;
  in.relpath = relpath;
  in.content = code;
  return LintSource(in, /*force_all_rules=*/true);
}

TEST(LintRulesTest, WallclockFires) {
  const auto f =
      LintSnippet("uint64_t T() {\n"
                  "  return std::chrono::steady_clock::now()\n"
                  "      .time_since_epoch().count();\n"
                  "}\n");
  ASSERT_EQ(f.size(), 1u) << FormatFindings(f);
  EXPECT_EQ(f[0].rule, "wallclock");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRulesTest, RandFires) {
  const auto f = LintSnippet("int a = rand();\nstd::mt19937 gen(42);\n");
  EXPECT_EQ(f.size(), 2u) << FormatFindings(f);
  EXPECT_TRUE(HasRule(f, "rand"));
}

TEST(LintRulesTest, CommentsAndStringsAreStripped) {
  const auto f = LintSnippet(
      "// std::mt19937 would be bad\n"
      "const char* kMsg = \"call rand() for std::random_device\";\n"
      "int x = 0;  // time(NULL) in a comment\n");
  EXPECT_TRUE(f.empty()) << FormatFindings(f);
}

TEST(LintRulesTest, UnorderedIterOverMemberFromPairedHeader) {
  SourceInput in;
  in.relpath = "src/ring/x.cc";
  in.paired_header = "class T {\n  std::unordered_map<int, int> live_;\n};\n";
  in.content =
      "void T::Sweep() {\n"
      "  for (const auto& [k, v] : live_) {\n"
      "    Use(k, v);\n"
      "  }\n"
      "}\n";
  const auto f = LintSource(in, /*force_all_rules=*/true);
  ASSERT_EQ(f.size(), 1u) << FormatFindings(f);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRulesTest, OrderedContainersAreFine) {
  SourceInput in;
  in.relpath = "src/ring/x.cc";
  in.paired_header = "class T {\n  std::map<int, int> live_;\n};\n";
  in.content = "void T::Sweep() {\n  for (auto& [k, v] : live_) {}\n}\n";
  EXPECT_TRUE(LintSource(in, true).empty());
}

TEST(LintRulesTest, RawScheduleFiresOutsideSimOnly) {
  const std::string code = "void F(sim::Simulator* s) {\n"
                           "  s->Schedule(Event{});\n"
                           "}\n";
  SourceInput ring_file;
  ring_file.relpath = "src/ring/x.cc";
  ring_file.content = code;
  EXPECT_TRUE(HasRule(LintSource(ring_file), "raw-schedule"));
  SourceInput sim_file;
  sim_file.relpath = "src/sim/event_queue.cc";
  sim_file.content = code;
  EXPECT_FALSE(HasRule(LintSource(sim_file), "raw-schedule"));
}

TEST(LintRulesTest, BoxedCallbackFiresInSchedulerDirsOnly) {
  const std::string code = "void Post(std::function<void()> fn);\n";
  SourceInput sim_file;
  sim_file.relpath = "src/sim/x.cc";
  sim_file.content = code;
  EXPECT_TRUE(HasRule(LintSource(sim_file), "boxed-callback"));
  SourceInput net_file;
  net_file.relpath = "src/net/x.cc";
  net_file.content = code;
  EXPECT_TRUE(HasRule(LintSource(net_file), "boxed-callback"));
  // Protocol layers may still take std::function across public APIs.
  SourceInput ring_file;
  ring_file.relpath = "src/ring/x.cc";
  ring_file.content = code;
  EXPECT_FALSE(HasRule(LintSource(ring_file), "boxed-callback"));
  // Mentions in comments don't count.
  SourceInput comment_only;
  comment_only.relpath = "src/sim/y.cc";
  comment_only.content = "// carried a std::function<void()> per event\n";
  EXPECT_FALSE(HasRule(LintSource(comment_only), "boxed-callback"));
}

TEST(LintRulesTest, UseAfterMoveFires) {
  const auto f = LintSnippet(
      "void F(Req req) {\n"
      "  Send(ReqBytes(req.key.size(), 0), std::move(req));\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u) << FormatFindings(f);
  EXPECT_EQ(f[0].rule, "use-after-move");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRulesTest, UseAfterMoveHoistedReadIsFine) {
  const auto f = LintSnippet(
      "void F(Req req) {\n"
      "  const uint64_t bytes = ReqBytes(req.key.size(), 0);\n"
      "  Send(bytes, std::move(req));\n"
      "}\n");
  EXPECT_TRUE(f.empty()) << FormatFindings(f);
}

TEST(LintRulesTest, UseAfterMoveLambdaBodyIsSequenced) {
  // The capture's move races sibling *arguments*; the lambda body runs after
  // the call, so reads of the captured copy inside it must not fire.
  const auto f = LintSnippet(
      "void F(Req req) {\n"
      "  Send(addr, [req = std::move(req)]() mutable {\n"
      "    Handle(req.key);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(f.empty()) << FormatFindings(f);
}

TEST(LintRulesTest, UseAfterMoveDoubleMoveFires) {
  const auto f = LintSnippet(
      "void F(T t) {\n"
      "  G(std::move(t), std::move(t));\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u) << FormatFindings(f);
  EXPECT_EQ(f[0].rule, "use-after-move");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRulesTest, UncheckedStatusFires) {
  const auto f = LintSnippet(
      "Status Flush();\n"
      "void F() {\n"
      "  Flush();\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u) << FormatFindings(f);
  EXPECT_EQ(f[0].rule, "unchecked-status");
  EXPECT_EQ(f[0].line, 3);
}

TEST(LintRulesTest, UncheckedStatusConsumedOrDiscardedIsFine) {
  const auto f = LintSnippet(
      "Status Flush();\n"
      "void F() {\n"
      "  (void)Flush();\n"
      "  Status s = Flush();\n"
      "  if (!Flush().ok()) {\n"
      "    return;\n"
      "  }\n"
      "  return Flush();\n"
      "}\n");
  EXPECT_TRUE(f.empty()) << FormatFindings(f);
}

TEST(LintRulesTest, UncheckedStatusUsesPairedHeaderDecls) {
  SourceInput in;
  in.relpath = "src/ring/x.cc";
  in.paired_header = "struct W {\n  Status Flush();\n};\n";
  in.content = "void F(W* w) {\n  w->Flush();\n}\n";
  const auto f = LintSource(in, /*force_all_rules=*/true);
  ASSERT_EQ(f.size(), 1u) << FormatFindings(f);
  EXPECT_EQ(f[0].rule, "unchecked-status");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRulesTest, AllowlistSilencesNamedRuleOnly) {
  const auto same_line =
      LintSnippet("int a = rand();  // ring-lint: ok(rand)\n");
  EXPECT_TRUE(same_line.empty()) << FormatFindings(same_line);
  const auto prev_line = LintSnippet(
      "// ring-lint: ok(rand)\n"
      "int a = rand();\n");
  EXPECT_TRUE(prev_line.empty()) << FormatFindings(prev_line);
  // An ok(...) for a different rule must not silence this one.
  const auto wrong_rule =
      LintSnippet("int a = rand();  // ring-lint: ok(wallclock)\n");
  ASSERT_EQ(wrong_rule.size(), 1u);
  EXPECT_EQ(wrong_rule[0].rule, "rand");
}

// ---- fixtures -------------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(LintFixtureTest, SeededViolationsAllFire) {
  SourceInput in;
  in.relpath = "tests/lint/fixture_bad.cc";
  in.content = ReadFile(std::string(RING_SOURCE_ROOT) +
                        "/tests/lint/fixture_bad.cc");
  const auto f = LintSource(in, /*force_all_rules=*/true);
  EXPECT_TRUE(HasRule(f, "wallclock")) << FormatFindings(f);
  EXPECT_TRUE(HasRule(f, "rand"));
  EXPECT_TRUE(HasRule(f, "unordered-iter"));
  EXPECT_TRUE(HasRule(f, "raw-schedule"));
  EXPECT_TRUE(HasRule(f, "boxed-callback"));
  EXPECT_TRUE(HasRule(f, "use-after-move"));
  EXPECT_TRUE(HasRule(f, "unchecked-status"));
  EXPECT_GE(f.size(), 9u) << FormatFindings(f);
}

TEST(LintFixtureTest, AllowlistedFixtureIsClean) {
  SourceInput in;
  in.relpath = "tests/lint/fixture_allowlisted.cc";
  in.content = ReadFile(std::string(RING_SOURCE_ROOT) +
                        "/tests/lint/fixture_allowlisted.cc");
  const auto f = LintSource(in, /*force_all_rules=*/true);
  EXPECT_TRUE(f.empty()) << FormatFindings(f);
}

// ---- build graph ----------------------------------------------------------

TEST(LintBuildGraphTest, ReportsOrphanSourcesAndTargets) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "ring_lint_orphan_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  fs::create_directories(root / "tests");
  auto write = [](const fs::path& p, const std::string& text) {
    std::ofstream(p) << text;
  };
  write(root / "CMakeLists.txt",
        "add_subdirectory(src/core)\nadd_subdirectory(tests)\n");
  write(root / "src" / "core" / "CMakeLists.txt",
        "add_library(core linked.cc)\n"
        "add_library(island island.cc)\n");
  write(root / "src" / "core" / "linked.cc", "int L() { return 1; }\n");
  write(root / "src" / "core" / "island.cc", "int I() { return 2; }\n");
  write(root / "src" / "core" / "orphan.cc", "int O() { return 3; }\n");
  write(root / "tests" / "CMakeLists.txt",
        "ring_add_test(core_test core)\n");
  write(root / "tests" / "core_test.cc", "int main() { return 0; }\n");

  const auto f = LintBuildGraph(root.string());
  ASSERT_EQ(f.size(), 2u) << FormatFindings(f);
  EXPECT_EQ(RulesOf(f), (std::vector<std::string>{"orphan-cc", "orphan-cc"}));
  const std::string text = FormatFindings(f);
  EXPECT_NE(text.find("island.cc"), std::string::npos) << text;
  EXPECT_NE(text.find("orphan.cc"), std::string::npos) << text;
  EXPECT_EQ(text.find("linked.cc"), std::string::npos) << text;
  fs::remove_all(root);
}

// ---- the gate: the repo itself stays clean --------------------------------

TEST(LintTreeTest, RepositoryIsClean) {
  const auto f = LintTree(RING_SOURCE_ROOT);
  EXPECT_TRUE(f.empty()) << FormatFindings(f);
}

TEST(LintTreeTest, FormatIsFileLineRuleMessage) {
  LintFinding a{"src/ring/x.cc", 12, "rand", "msg"};
  LintFinding b{"src/sim/y.cc", 0, "orphan-cc", "file-level"};
  EXPECT_EQ(FormatFindings({a, b}),
            "src/ring/x.cc:12: [rand] msg\n"
            "src/sim/y.cc: [orphan-cc] file-level\n");
}

}  // namespace
}  // namespace ring::analysis
