// Memgest groups / balancing (paper §5.4): with G rotated groups, every
// node carries coordinator, replica and parity roles, removing the skew of
// a single-group layout.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/hash.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

TEST(GroupsConfigTest, RotationCoversAllSlots) {
  // s=3, d=2, groups=5: fifteen shards, three per slot.
  auto c = consensus::ClusterConfig::Initial(3, 2, 7, 5);
  EXPECT_EQ(c.num_shards(), 15u);
  std::vector<int> per_slot(5, 0);
  for (uint32_t shard = 0; shard < 15; ++shard) {
    const uint32_t slot = c.SlotOfShard(shard);
    ASSERT_LT(slot, 5u);
    ++per_slot[slot];
  }
  for (int count : per_slot) {
    EXPECT_EQ(count, 3);  // perfectly balanced coordinators
  }
  // Every slot is a coordinator now.
  for (net::NodeId n = 0; n < 5; ++n) {
    EXPECT_TRUE(c.IsCoordinator(n));
  }
  // Group 0 keeps the base layout.
  EXPECT_EQ(c.SlotOfShard(0), 0u);
  EXPECT_EQ(c.SlotOfShard(2), 2u);
  // Group 1 is rotated by one.
  EXPECT_EQ(c.SlotOfShard(3), 1u);
  EXPECT_EQ(c.SlotOfShard(5), 3u);
  // Redundant slots rotate too.
  EXPECT_EQ(c.RedundantSlot(0, 0), 3u);
  EXPECT_EQ(c.RedundantSlot(2, 0), 0u);  // parity lands on a "data" slot
}

TEST(GroupsConfigTest, ShardsOfSlotInverse) {
  auto c = consensus::ClusterConfig::Initial(3, 2, 7, 5);
  for (uint32_t slot = 0; slot < 5; ++slot) {
    for (uint32_t shard : c.ShardsOfSlot(slot)) {
      EXPECT_EQ(c.SlotOfShard(shard), slot);
    }
  }
}

class GroupedClusterTest : public ::testing::Test {
 protected:
  GroupedClusterTest() {
    RingOptions o;
    o.s = 3;
    o.d = 2;
    o.groups = 5;
    o.spares = 2;
    o.clients = 1;
    o.seed = 321;
    cluster_ = std::make_unique<RingCluster>(o);
    rep3_ = *cluster_->CreateMemgest(MemgestDescriptor::Replicated(3));
    srs32_ = *cluster_->CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));
  }
  std::unique_ptr<RingCluster> cluster_;
  MemgestId rep3_ = 0;
  MemgestId srs32_ = 0;
};

TEST_F(GroupedClusterTest, PutGetMoveAcrossGroups) {
  for (int i = 0; i < 60; ++i) {
    const Key key = "g-" + std::to_string(i);
    const Buffer value = MakePatternBuffer(300 + i * 11, i);
    const MemgestId g = (i % 2 == 0) ? rep3_ : srs32_;
    ASSERT_TRUE(cluster_->Put(key, value, g).ok()) << key;
    auto got = cluster_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
  // Moves across schemes stay byte-exact in every group.
  for (int i = 0; i < 60; i += 7) {
    const Key key = "g-" + std::to_string(i);
    const MemgestId dst = (i % 2 == 0) ? srs32_ : rep3_;
    ASSERT_TRUE(cluster_->Move(key, dst).ok()) << key;
    auto got = cluster_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, MakePatternBuffer(300 + i * 11, i)) << key;
  }
}

TEST_F(GroupedClusterTest, LoadSpreadsOverAllNodes) {
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(cluster_
                    ->Put("spread-" + std::to_string(i),
                          MakePatternBuffer(128, i), rep3_)
                    .ok());
  }
  // Every node handled a meaningful share of the puts (single-group layouts
  // leave redundant slots with zero coordinator load).
  uint64_t total = 0;
  uint64_t min_puts = ~0ULL;
  for (net::NodeId n = 0; n < 5; ++n) {
    const uint64_t puts = cluster_->server(n).counters().puts;
    total += puts;
    min_puts = std::min(min_puts, puts);
  }
  EXPECT_EQ(total, 400u);
  EXPECT_GT(min_puts, 400u / 5 / 3);  // within ~3x of perfect balance
}

TEST_F(GroupedClusterTest, ParityMemorySpreadsOverAllNodes) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster_
                    ->Put("pmem-" + std::to_string(i),
                          MakePatternBuffer(2048, i), srs32_)
                    .ok());
  }
  cluster_->RunFor(2 * sim::kMillisecond);
  // With rotation every node hosts parity for some groups; in a
  // single-group cluster only the d redundant slots would.
  for (net::NodeId n = 0; n < 5; ++n) {
    EXPECT_GT(cluster_->server(n).counters().parity_updates, 0u)
        << "node " << n;
  }
}

TEST_F(GroupedClusterTest, FailureRecoveryAcrossGroups) {
  std::vector<std::pair<Key, Buffer>> data;
  for (int i = 0; i < 40; ++i) {
    Key key = "fr-" + std::to_string(i);
    Buffer value = MakePatternBuffer(700 + i * 31, i);
    const MemgestId g = (i % 2 == 0) ? rep3_ : srs32_;
    ASSERT_TRUE(cluster_->Put(key, value, g).ok());
    data.emplace_back(std::move(key), std::move(value));
  }
  // Node 2 coordinates three shards and holds replica + parity roles.
  cluster_->KillNode(2, /*force_detect=*/true);
  cluster_->RunFor(30 * sim::kMillisecond);
  for (const auto& [key, value] : data) {
    auto got = cluster_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
}

}  // namespace
}  // namespace ring
