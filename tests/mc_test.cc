// ring-mc: schedule-space model checker tests.
//
// Covers the determinism contract (same spec, byte-identical outcome), DPOR
// soundness (same final-state fingerprint set as naive full enumeration, at
// a fraction of the traces), shrinker determinism, and the regression
// harness: the three PR 5 bugs, re-introduced behind RingOptions::
// TestOnlyBugs, must each be rediscovered by bounded exploration and vanish
// when the flag is off.
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mc/explorer.h"
#include "src/mc/harness.h"
#include "src/mc/scenarios.h"
#include "src/mc/spec.h"

namespace ring::mc {
namespace {

McOp Put(const std::string& key, uint64_t nonce, uint64_t at_ns,
         uint32_t client = 0, uint32_t size = 64) {
  McOp op;
  op.kind = McOp::Kind::kPut;
  op.key = key;
  op.nonce = nonce;
  op.at_ns = at_ns;
  op.client = client;
  op.value_size = size;
  return op;
}

McOp Get(const std::string& key, uint64_t at_ns, uint32_t client = 0) {
  McOp op;
  op.kind = McOp::Kind::kGet;
  op.key = key;
  op.at_ns = at_ns;
  op.client = client;
  return op;
}

// Smallest interesting cluster: two coordinator shards, one redundant slot,
// rep2 — three servers. Two clients race puts on one key within the reorder
// window, so the schedule decides the final value: at least two distinct
// final states are reachable, and the order flip is what DPOR must not lose.
McConfig MicroConfig() {
  McConfig c;
  c.s = 2;
  c.d = 1;
  c.spares = 0;
  c.clients = 2;
  c.seed = 1;
  c.scheme = "rep2";
  c.reorder_window_ns = 3000;
  c.max_steps = 48;
  c.ops.push_back(Put("alpha", 1, 0, 0));
  c.ops.push_back(Put("alpha", 2, 500, 1));
  c.ops.push_back(Get("alpha", 40'000, 0));
  return c;
}

TraceResult RunDefault(const McConfig& config) {
  TraceRunner::Options opts;
  opts.record = true;
  return TraceRunner(config, opts).Run();
}

TEST(McHarness, DefaultRunCompletesClean) {
  const TraceResult res = RunDefault(MicroConfig());
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.violation, "") << res.violation_detail;
  EXPECT_FALSE(res.diverged);
  // The controller actually saw choice points (the hooks are live).
  EXPECT_GT(res.steps, 0u);
  EXPECT_FALSE(res.trail.empty());
  EXPECT_NE(res.final_digest, 0u);
}

TEST(McHarness, DefaultRunDeterministic) {
  const TraceResult a = RunDefault(MicroConfig());
  const TraceResult b = RunDefault(MicroConfig());
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.final_digest, b.final_digest);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.trail.size(), b.trail.size());
}

// Replaying the dense decision list of a run reproduces it byte-for-byte:
// same schedule hash, same final state.
TEST(McHarness, DenseReplayByteIdentical) {
  const TraceResult ref = RunDefault(MicroConfig());
  std::vector<McDecision> dense;
  for (const McStepRecord& r : ref.trail) {
    dense.push_back(r.decision);
  }
  TraceRunner::Options opts;
  opts.plan = dense;
  opts.record = true;
  const TraceResult replayed = TraceRunner(MicroConfig(), opts).Run();
  EXPECT_FALSE(replayed.diverged);
  EXPECT_EQ(replayed.schedule_hash, ref.schedule_hash);
  EXPECT_EQ(replayed.final_digest, ref.final_digest);
  EXPECT_EQ(replayed.steps, ref.steps);
}

// Forcing a non-default candidate at one step changes the schedule but
// stays deterministic across repeats.
TEST(McHarness, DeviatedRunDeterministic) {
  const TraceResult ref = RunDefault(MicroConfig());
  // Find a step with a real choice.
  McDecision dev;
  bool found = false;
  for (const McStepRecord& r : ref.trail) {
    if (r.candidates.size() >= 2) {
      dev.kind = McDecision::Kind::kDeliver;
      dev.step = r.decision.step;
      dev.tag = r.candidates[1];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "micro config has no branching choice point";
  TraceRunner::Options opts;
  opts.plan = {dev};
  opts.record = true;
  const TraceResult a = TraceRunner(MicroConfig(), opts).Run();
  const TraceResult b = TraceRunner(MicroConfig(), opts).Run();
  EXPECT_FALSE(a.diverged);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.final_digest, b.final_digest);
  EXPECT_NE(a.schedule_hash, ref.schedule_hash);
}

TEST(McSpec, RoundTripsThroughText) {
  ScheduleSpec spec;
  spec.config = MicroConfig();
  spec.config.max_drops = 1;
  spec.config.max_crashes = 1;
  spec.config.crash_nodes = {0, 2};
  spec.config.bug_single_source_recovery = true;
  McDecision d;
  d.kind = McDecision::Kind::kDeliver;
  d.step = 3;
  d.tag = 17;
  spec.decisions.push_back(d);
  d.kind = McDecision::Kind::kCrash;
  d.step = 9;
  d.tag = 0;
  d.node = 2;
  spec.decisions.push_back(d);
  spec.expect_violation = "durability";
  spec.expect_digest = 0xdeadbeefcafef00dULL;

  const std::string text = spec.ToString();
  const Result<ScheduleSpec> parsed = ScheduleSpec::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->ToString(), text);
  EXPECT_EQ(parsed->decisions.size(), 2u);
  EXPECT_TRUE(parsed->decisions[0] == spec.decisions[0]);
  EXPECT_TRUE(parsed->decisions[1] == spec.decisions[1]);
  EXPECT_EQ(parsed->expect_violation, "durability");
  EXPECT_EQ(parsed->expect_digest, spec.expect_digest);
}

TEST(McSpec, ParseRejectsGarbage) {
  EXPECT_FALSE(ScheduleSpec::Parse("not a spec").ok());
  EXPECT_FALSE(ScheduleSpec::Parse("mc-spec v1\nfrobnicate x=1").ok());
  EXPECT_FALSE(
      ScheduleSpec::Parse("mc-spec v1\nstep 5 deliver tag=1\nstep 3 deliver "
                          "tag=2")
          .ok());
}

// The tentpole equivalence check: DPOR + sleep sets must reach exactly the
// final states naive full enumeration reaches, with at least 5x fewer
// traces.
TEST(McExplorer, DporMatchesNaiveEnumeration) {
  const McConfig config = MicroConfig();

  ExplorerOptions naive;
  naive.dpor = false;
  naive.sleep_sets = false;
  naive.state_dedup = false;
  naive.max_traces = 100'000;
  naive.stop_on_violation = false;
  ExploreResult full = Explorer(config, naive).Explore();
  ASSERT_LT(full.traces, naive.max_traces) << "naive enumeration truncated";
  ASSERT_FALSE(full.found) << full.violation << ": " << full.violation_detail;

  ExplorerOptions reduced;
  reduced.dpor = true;
  reduced.sleep_sets = true;
  reduced.max_traces = 100'000;
  reduced.stop_on_violation = false;
  ExploreResult dpor = Explorer(config, reduced).Explore();
  ASSERT_FALSE(dpor.found) << dpor.violation;

  // Non-vacuous: the schedule really decides the outcome here.
  EXPECT_GE(full.fingerprints.size(), 2u);
  EXPECT_EQ(dpor.fingerprints, full.fingerprints)
      << "DPOR missed or invented final states: " << dpor.fingerprints.size()
      << " vs " << full.fingerprints.size();
  EXPECT_LE(dpor.traces * 5, full.traces)
      << "DPOR explored " << dpor.traces << " traces vs naive "
      << full.traces;
}

// --- PR 5 regression bugs -------------------------------------------------
// The scenario configs live in src/mc/scenarios.cc (shared with
// `ringctl mc`). Each re-introduces one seed-era bug behind RingOptions::
// TestOnlyBugs and bounds the schedule space so exploration rediscovers it
// quickly. The paired assertion — clean with the flag off over the same
// space — pins the oracle's false-positive rate at zero for these workloads.

McConfig ScenarioConfig(const std::string& name, bool bug) {
  Result<McScenario> sc = PresetScenario(name, bug);
  EXPECT_TRUE(sc.ok()) << sc.status().message();
  return sc->config;
}

// Shared check: the bug is found within budget, the shrunk counterexample
// replays byte-identically to the recorded expectation, and the identical
// schedule space is clean with the flag off.
void ExpectRediscovered(const McConfig& buggy, const McConfig& clean,
                        const std::string& want_violation) {
  ExplorerOptions opts;
  opts.max_traces = 5'000;
  ExploreResult found = Explorer(buggy, opts).Explore();
  ASSERT_TRUE(found.found) << "explored " << found.traces
                           << " traces without finding " << want_violation;
  EXPECT_EQ(found.violation, want_violation) << found.violation_detail;
  EXPECT_LE(found.traces, opts.max_traces);

  // The minimized spec replays to the same violation and final state, twice
  // (replay is byte-identical, not merely violation-identical).
  const ScheduleSpec& spec = found.counterexample;
  EXPECT_EQ(spec.expect_violation, want_violation);
  const TraceResult a = Replay(spec);
  const TraceResult b = Replay(spec);
  EXPECT_FALSE(a.diverged);
  EXPECT_EQ(a.violation, want_violation) << a.violation_detail;
  EXPECT_EQ(a.final_digest, spec.expect_digest);
  EXPECT_EQ(b.schedule_hash, a.schedule_hash);
  EXPECT_EQ(b.final_digest, a.final_digest);

  // The spec survives its own text round trip.
  const Result<ScheduleSpec> reparsed = ScheduleSpec::Parse(spec.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  const TraceResult c = Replay(*reparsed);
  EXPECT_EQ(c.schedule_hash, a.schedule_hash);
  EXPECT_EQ(c.final_digest, a.final_digest);

  // Same bounds, bug off: the whole bounded space is violation-free.
  ExplorerOptions sweep = opts;
  sweep.stop_on_violation = false;
  const ExploreResult none = Explorer(clean, sweep).Explore();
  EXPECT_FALSE(none.found) << none.violation << ": " << none.violation_detail;
}

TEST(McBugs, RediscoversWriteRetransmissionBug) {
  ExpectRediscovered(ScenarioConfig("wedged-write", true),
                     ScenarioConfig("wedged-write", false),
                     kViolationWedgedWrite);
}

TEST(McBugs, RediscoversSingleSourceRecoveryBug) {
  ExpectRediscovered(ScenarioConfig("single-source-recovery", true),
                     ScenarioConfig("single-source-recovery", false),
                     kViolationDurability);
}

TEST(McBugs, RediscoversGcRevalidateBug) {
  ExpectRediscovered(ScenarioConfig("gc-revalidate", true),
                     ScenarioConfig("gc-revalidate", false),
                     kViolationCorruptRead);
}

TEST(McScenarios, RejectsUnknownName) {
  EXPECT_FALSE(PresetScenario("frobnicate", true).ok());
  EXPECT_EQ(PresetScenarios(false).size(), 3u);
}

// The shrinker is deterministic: two independent explorations of the same
// config minimize to the identical spec text.
TEST(McShrink, MinimizedSpecIsDeterministic) {
  ExplorerOptions opts;
  opts.max_traces = 5'000;
  const McConfig wedged = ScenarioConfig("wedged-write", true);
  const ExploreResult a = Explorer(wedged, opts).Explore();
  const ExploreResult b = Explorer(wedged, opts).Explore();
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.counterexample.ToString(), b.counterexample.ToString());
  // Shrinking really dropped the dense prefix: the wedge needs exactly one
  // deviation (the dropped append).
  EXPECT_EQ(a.counterexample.decisions.size(), 1u);
  EXPECT_TRUE(a.counterexample.decisions[0].kind == McDecision::Kind::kDrop);
}

}  // namespace
}  // namespace ring::mc
