// Client library machinery (paper §5.5 client behaviour): request routing,
// timeout + multicast retry, duplicate suppression, statistics.
#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

RingOptions Opts(uint64_t seed, uint64_t retry_us = 300) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = 1;
  o.clients = 2;
  o.seed = seed;
  o.params.client_retry_timeout_ns = retry_us * sim::kMicrosecond;
  return o;
}

TEST(ClientTest, LatencyRecordedPerOperation) {
  RingCluster cluster(Opts(1));
  auto g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(1));
  auto& client = cluster.client(0);
  client.ResetStats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.Put("k" + std::to_string(i), "v", g).ok());
  }
  EXPECT_EQ(client.completed(), 10u);
  EXPECT_EQ(client.latencies().count(), 10u);
  EXPECT_EQ(client.timeouts(), 0u);
  EXPECT_EQ(client.outstanding(), 0u);
  // NIC-to-NIC put latency for tiny objects is a handful of microseconds.
  EXPECT_GT(client.latencies().Median(), 3.0);
  EXPECT_LT(client.latencies().Median(), 12.0);
}

TEST(ClientTest, RetryFindsPromotedCoordinator) {
  RingCluster cluster(Opts(2));
  auto g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const Key key = [] {
    for (int i = 0;; ++i) {
      Key k = "rt-" + std::to_string(i);
      if (KeyShard(k, 3) == 1) {
        return k;
      }
    }
  }();
  ASSERT_TRUE(cluster.Put(key, "survives", g).ok());
  cluster.KillNode(1, /*force_detect=*/true);
  // No explicit config refresh: the first get times out against the dead
  // node, multicasts, and the promoted spare answers.
  auto got = cluster.Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "survives");
  EXPECT_GT(cluster.client(0).latencies().values().back(), 250.0);  // paid one retry period
}

TEST(ClientTest, MulticastRepliesDeduplicated) {
  RingCluster cluster(Opts(3, /*retry_us=*/50));  // aggressive retries
  auto g = *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));
  // A large EC put takes longer than the 50 us retry period, so the client
  // multicasts while the original is still in flight. The completion count
  // must still be exactly one per op.
  auto& client = cluster.client(0);
  client.ResetStats();
  int acks = 0;
  bool done = false;
  client.Put("slow", std::make_shared<Buffer>(MakePatternBuffer(8192, 1)), g,
             [&](Status s, Version) {
               EXPECT_TRUE(s.ok());
               ++acks;
               done = true;
             });
  ASSERT_TRUE(cluster.RunUntilDone([&] { return done; }));
  cluster.RunFor(5 * sim::kMillisecond);  // absorb any late duplicates
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(client.completed(), 1u);
  // The duplicate version the retry may have created is eventually GC'd;
  // reads stay consistent.
  auto got = cluster.Get("slow");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakePatternBuffer(8192, 1));
}

TEST(ClientTest, ExhaustedRetryBudgetReportsUnavailable) {
  RingOptions o = Opts(4, /*retry_us=*/100);
  o.spares = 0;
  RingCluster cluster(o);
  auto g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  const Key key = [] {
    for (int i = 0;; ++i) {
      Key k = "to-" + std::to_string(i);
      if (KeyShard(k, 3) == 0) {
        return k;
      }
    }
  }();
  ASSERT_TRUE(cluster.Put(key, "x", g).ok());
  cluster.KillNode(0, /*force_detect=*/false);  // leader + shard 0, no spare
  auto got = cluster.Get(key);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(cluster.client(0).timeouts(), 0u);
}

TEST(ClientTest, TwoClientsIndependentStats) {
  RingCluster cluster(Opts(5));
  auto g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(1));
  cluster.client(0).ResetStats();  // drop the admin op from the counters
  cluster.client(1).ResetStats();
  ASSERT_TRUE(cluster.Put("a", "1", g, /*client=*/0).ok());
  ASSERT_TRUE(cluster.Put("b", "2", g, /*client=*/1).ok());
  ASSERT_TRUE(cluster.Get("a", /*client=*/1).ok());
  EXPECT_EQ(cluster.client(0).completed(), 1u);
  EXPECT_EQ(cluster.client(1).completed(), 2u);
}

TEST(ClientTest, AdminOpsThroughLeader) {
  RingCluster cluster(Opts(6));
  // Create / describe / set-default / delete, all via client 1.
  bool done = false;
  Result<MemgestId> created = InternalError("pending");
  cluster.client(1).CreateMemgest(MemgestDescriptor::ErasureCoded(2, 1, "ec"),
                                  [&](Result<MemgestId> r) {
                                    created = std::move(r);
                                    done = true;
                                  });
  ASSERT_TRUE(cluster.RunUntilDone([&] { return done; }));
  ASSERT_TRUE(created.ok());
  auto desc = cluster.GetMemgestDescriptor(*created);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->name, "ec");
  ASSERT_TRUE(cluster.SetDefaultMemgest(*created).ok());
  ASSERT_TRUE(cluster.Put("plain", "default-routed").ok());
  EXPECT_TRUE(cluster.Get("plain").ok());
  // The default memgest cannot be deleted.
  EXPECT_FALSE(cluster.DeleteMemgest(*created).ok());
}

// Regression: a *retried* move that gets postponed behind an uncommitted
// version (§5.2) must still answer once that version commits. The postponed
// continuation used to re-enter HandleMove with the retry flag still set, so
// the retried-request dedup map swallowed it on commit — the client burned
// through all its retries (each deduped the same way) and reported a
// spurious timeout for a move the server could have completed.
TEST(ClientTest, DeferredRetriedMoveStillReplies) {
  RingCluster cluster(Opts(8));
  auto fsync =
      *cluster.CreateMemgest(MemgestDescriptor::FullSyncReplicated(2));
  auto rep1 = *cluster.CreateMemgest(MemgestDescriptor::Replicated(1));
  const Key key = [] {
    for (int i = 0;; ++i) {
      Key k = "dm-" + std::to_string(i);
      if (KeyShard(k, 3) == 2) {
        return k;
      }
    }
  }();
  // Wedge the commit: the full-sync put needs an ack from its replica on
  // node 3, which is dead but not yet detected.
  cluster.KillNode(3, /*force_detect=*/false);
  bool put_done = false;
  cluster.client(0).Put(key, std::make_shared<Buffer>(ToBuffer("wedged")),
                        fsync, [&](Status, Version) { put_done = true; });
  cluster.RunFor(1 * sim::kMillisecond);
  EXPECT_FALSE(put_done);  // write-ahead done, commit pending

  // The move arrives as a client *retry* (multicast after the original was
  // lost) and is postponed behind the uncommitted version.
  bool move_done = false;
  Status move_status = InternalError("no reply");
  MoveRequest req;
  req.key = key;
  req.dst = rep1;
  req.client = cluster.client(1).node();
  req.req_id = 7777;
  req.retry = true;
  req.reply = [&](Status s, Version) {
    move_status = s;
    move_done = true;
  };
  cluster.server(2).HandleMove(req);
  cluster.RunFor(1 * sim::kMillisecond);
  EXPECT_FALSE(move_done);
  // Later retries of the same request are deduplicated while it waits.
  cluster.server(2).HandleMove(req);

  // Failure detection promotes the spare, the pending version commits, and
  // the postponed move re-executes — it must reply despite having entered
  // as a retry.
  cluster.RunFor(150 * sim::kMillisecond);
  ASSERT_TRUE(move_done);
  EXPECT_TRUE(move_status.ok()) << move_status;
  auto got = cluster.Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "wedged");
}

}  // namespace
}  // namespace ring
