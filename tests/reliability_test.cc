#include <gtest/gtest.h>

#include <cmath>

#include "src/reliability/ctmc.h"
#include "src/reliability/models.h"
#include "src/srs/srs_code.h"

namespace ring::reliability {
namespace {

TEST(RealMatrixTest, ExpOfZeroIsIdentity) {
  RealMatrix z(3, 3);
  RealMatrix e = z.Exp();
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(e.At(i, j), i == j ? 1.0 : 0.0, 1e-14);
    }
  }
}

TEST(RealMatrixTest, ExpOfDiagonal) {
  RealMatrix d(2, 2);
  d.Set(0, 0, 1.0);
  d.Set(1, 1, -2.0);
  RealMatrix e = d.Exp();
  EXPECT_NEAR(e.At(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e.At(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e.At(0, 1), 0.0, 1e-14);
}

TEST(RealMatrixTest, ExpOfNilpotent) {
  // [[0,1],[0,0]] -> exp = [[1,1],[0,1]].
  RealMatrix n(2, 2);
  n.Set(0, 1, 1.0);
  RealMatrix e = n.Exp();
  EXPECT_NEAR(e.At(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e.At(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e.At(1, 1), 1.0, 1e-14);
}

TEST(RealMatrixTest, ExpLargeNormStillStochastic) {
  // Two-state generator with large rates: rows of exp(Q t) must sum to 1.
  RealMatrix q(2, 2);
  q.Set(0, 0, -5e4);
  q.Set(0, 1, 5e4);
  q.Set(1, 0, 1e4);
  q.Set(1, 1, -1e4);
  RealMatrix e = q.Exp();
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(e.At(i, 0) + e.At(i, 1), 1.0, 1e-9);
    EXPECT_GE(e.At(i, 0), -1e-12);
    EXPECT_GE(e.At(i, 1), -1e-12);
  }
  // Stationary distribution of this chain is (1/6, 5/6).
  EXPECT_NEAR(e.At(0, 1), 5.0 / 6.0, 1e-6);
}

TEST(CtmcTest, TwoStateAnalyticSolution) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: P_0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
  const double a = 2.0;
  const double b = 3.0;
  RealMatrix q(2, 2);
  q.Set(0, 0, -a);
  q.Set(0, 1, a);
  q.Set(1, 0, b);
  q.Set(1, 1, -b);
  Ctmc chain(q);
  for (double t : {0.1, 0.5, 1.0, 4.0}) {
    const auto p = chain.TransientDistribution({1.0, 0.0}, t);
    const double expected = b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
    EXPECT_NEAR(p[0], expected, 1e-10) << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-10);
  }
}

TEST(CtmcTest, CumulativeOccupancyMatchesIntegral) {
  // Pure death chain 0 -> 1 at rate a (1 absorbing): time in 0 during [0,t]
  // = (1 - e^{-at})/a.
  const double a = 4.0;
  RealMatrix q(2, 2);
  q.Set(0, 0, -a);
  q.Set(0, 1, a);
  Ctmc chain(q);
  const double t = 0.7;
  const auto occ = chain.CumulativeOccupancy({1.0, 0.0}, t);
  EXPECT_NEAR(occ[0], (1.0 - std::exp(-a * t)) / a, 1e-10);
  EXPECT_NEAR(occ[0] + occ[1], t, 1e-10);
}

Environment TestEnv() {
  Environment env;
  return env;
}

TEST(RsModelTest, ReliabilityDecreasesInTime) {
  RsModel model(3, 2, TestEnv());
  const double r1 = model.Reliability(0.5);
  const double r2 = model.Reliability(1.0);
  const double r3 = model.Reliability(2.0);
  EXPECT_GT(r1, r2);
  EXPECT_GT(r2, r3);
  EXPECT_GT(r3, 0.9);  // still a reliable code
  EXPECT_LE(r1, 1.0);
}

TEST(RsModelTest, MoreParityMoreReliable) {
  const auto env = TestEnv();
  const double r1 = RsModel(3, 1, env).Reliability(1.0);
  const double r2 = RsModel(3, 2, env).Reliability(1.0);
  EXPECT_GT(Nines(r2), Nines(r1) + 1.0);  // each parity adds nines
}

TEST(RsModelTest, NoParityNoReliability) {
  // RS(k,0) loses data on the first failure: R(t) = e^{-kλt}.
  const auto env = TestEnv();
  RsModel model(3, 0, env);
  const double expected = std::exp(-3.0 * env.node_failure_rate * 1.0);
  EXPECT_NEAR(model.Reliability(1.0), expected, 1e-9);
}

TEST(RsModelTest, AvailabilityBelowReliability) {
  const auto env = TestEnv();
  RsModel model(4, 2, env);
  // Availability counts degraded-but-recovering time, so it is lower than
  // reliability for a code this strong.
  EXPECT_LT(model.IntervalAvailability(1.0), model.Reliability(1.0));
  EXPECT_GT(model.IntervalAvailability(1.0), 0.99);
}

TEST(SrsModelTest, UnstretchedMatchesRsModel) {
  const auto env = TestEnv();
  auto code = srs::SrsCode::Create(3, 2, 3);
  ASSERT_TRUE(code.ok());
  SrsModel srs_model(*code, env);
  RsModel rs_model(3, 2, env);
  EXPECT_NEAR(Nines(srs_model.Reliability(1.0)), Nines(rs_model.Reliability(1.0)),
              0.05);
  EXPECT_NEAR(srs_model.IntervalAvailability(1.0),
              rs_model.IntervalAvailability(1.0), 1e-6);
}

TEST(SrsModelTest, StretchingKeepsReliabilityComparable) {
  // Fig. 2's headline: SRS(3,1,s) stays ~flat in s.
  const auto env = TestEnv();
  auto base = srs::SrsCode::Create(3, 1, 3);
  ASSERT_TRUE(base.ok());
  const double base_nines = Nines(SrsModel(*base, env).Reliability(1.0));
  for (uint32_t s : {4u, 5u, 6u, 7u}) {
    auto code = srs::SrsCode::Create(3, 1, s);
    ASSERT_TRUE(code.ok());
    const double n = Nines(SrsModel(*code, env).Reliability(1.0));
    EXPECT_NEAR(n, base_nines, 1.0) << "s=" << s;
  }
}

TEST(SrsModelTest, Srs326MoreReliableThanRs32) {
  // Paper §3.3: "SRS(3,2,6) is more reliable than RS(3,2)" thanks to faster
  // per-node recovery.
  const auto env = TestEnv();
  auto stretched = srs::SrsCode::Create(3, 2, 6);
  auto plain = srs::SrsCode::Create(3, 2, 3);
  ASSERT_TRUE(stretched.ok() && plain.ok());
  EXPECT_GT(SrsModel(*stretched, env).Reliability(1.0),
            SrsModel(*plain, env).Reliability(1.0));
}

TEST(SrsModelTest, MaxToleratedMatchesToleranceVector) {
  const auto env = TestEnv();
  auto code = srs::SrsCode::Create(2, 1, 4);
  ASSERT_TRUE(code.ok());
  SrsModel model(*code, env);
  EXPECT_EQ(model.max_tolerated(), 2u);  // paper's appendix example
}

TEST(SrsModelTest, AvailabilityDecreasesWithStripeWidth) {
  // Fig. 16: more nodes in the stripe -> lower availability.
  const auto env = TestEnv();
  auto narrow = srs::SrsCode::Create(2, 1, 2);
  auto wide = srs::SrsCode::Create(2, 1, 8);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_GT(SrsModel(*narrow, env).IntervalAvailability(1.0),
            SrsModel(*wide, env).IntervalAvailability(1.0));
}

TEST(NinesTest, Values) {
  EXPECT_NEAR(Nines(0.99), 2.0, 1e-12);
  EXPECT_NEAR(Nines(0.9999), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(Nines(1.0), 16.0);
  EXPECT_DOUBLE_EQ(Nines(0.0), 0.0);
}

TEST(ReconstructionTimeTest, Equation6Shape) {
  Environment env;
  env.network_bandwidth = 1e9;
  env.compute_bandwidth = 1e9;
  // 1 GiB at 1 GB/s network + 1 GB/s compute ~ 2.15 s.
  EXPECT_NEAR(ReconstructionTimeSeconds(1ULL << 30, env), 2.147, 0.01);
  // Rebuild rate is the reciprocal in years.
  EXPECT_NEAR(RebuildRate(1ULL << 30, env) *
                  ReconstructionTimeSeconds(1ULL << 30, env),
              kSecondsPerYear, 1e-3);
}

}  // namespace
}  // namespace ring::reliability
