// Determinism regression (the property ring-lint polices): the same seeded
// fig7-style workload, run twice in one process, must produce byte-identical
// metrics dumps and Chrome traces — and running it a third time with the
// race detector enabled must not perturb either (the detector is pure
// observation: no events, no randomness, no schedule changes).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/ring/cluster.h"
#include "src/sim/task.h"

namespace ring {
namespace {

struct RunOutput {
  std::string metrics;
  std::string trace;
  std::string trace_summary;
};

// Mixed put/get traffic over the paper's memgest spread (rep1/rep3/srs32)
// across object sizes 2^4..2^11, with seeded random pacing — the shape of
// the fig7 latency workload, shrunk to test size.
RunOutput RunFig7StyleWorkload(bool analyze_races, bool telemetry = false,
                               uint32_t cores_per_node = 1) {
  RingOptions options;
  options.seed = 42;
  options.clients = 2;
  options.analyze_races = analyze_races;
  options.params.cores_per_node = cores_per_node;
  RingCluster cluster(options);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableMetrics(true);
  hub.EnableTracing(true);
  if (telemetry) {
    // Full telemetry pipeline on: windowed SLIs + flight recorder. Both are
    // pure observation and must not move a single event.
    hub.timeseries().TrackSliDefaults();
    hub.EnableTimeSeries(true);
    hub.EnableRecorder(true);
  }

  const std::vector<MemgestId> memgests = {
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1)),
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3)),
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2)),
  };

  Rng rng(7);
  int outstanding = 0;
  for (int op = 0; op < 300; ++op) {
    const Key key = "det-" + std::to_string(rng.NextBelow(24));
    const uint32_t client = static_cast<uint32_t>(rng.NextBelow(2));
    if (rng.NextBernoulli(0.55)) {
      const size_t size = size_t{16} << rng.NextBelow(8);  // 16 B .. 2 KiB
      auto value = std::make_shared<Buffer>(
          MakePatternBuffer(size, rng.NextU64()));
      const MemgestId g = memgests[rng.NextBelow(memgests.size())];
      ++outstanding;
      cluster.client(client).Put(key, std::move(value), g,
                                 [&](Status, Version) { --outstanding; });
    } else {
      ++outstanding;
      cluster.client(client).Get(key, [&](GetResult) { --outstanding; });
    }
    if (rng.NextBernoulli(0.5)) {
      cluster.RunFor(rng.NextBelow(20) * sim::kMicrosecond);
    }
  }
  EXPECT_TRUE(cluster.RunUntilDone([&] { return outstanding == 0; }));
  cluster.RunFor(2 * sim::kMillisecond);

  if (analyze_races) {
    // The workload is race-free; the detector proves it saw the run.
    const analysis::RaceDetector* race = cluster.simulator().race();
    EXPECT_NE(race, nullptr);
    if (race != nullptr) {
      EXPECT_GT(race->accesses_logged(), 0u);
      EXPECT_TRUE(race->races().empty()) << race->Report(&hub.tracer());
    }
  } else {
    EXPECT_EQ(cluster.simulator().race(), nullptr);
  }
  return RunOutput{hub.metrics().Summary(), hub.tracer().ChromeTraceJson(),
                   hub.tracer().Summary()};
}

TEST(DeterminismTest, SameSeedSameBytesTwiceInProcess) {
  const RunOutput first = RunFig7StyleWorkload(/*analyze_races=*/false);
  const RunOutput second = RunFig7StyleWorkload(/*analyze_races=*/false);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.trace_summary, second.trace_summary);
  EXPECT_FALSE(first.metrics.empty());
  EXPECT_FALSE(first.trace.empty());
}

TEST(DeterminismTest, RaceDetectorDoesNotPerturbTheSchedule) {
  const RunOutput plain = RunFig7StyleWorkload(/*analyze_races=*/false);
  const RunOutput observed = RunFig7StyleWorkload(/*analyze_races=*/true);
  EXPECT_EQ(plain.metrics, observed.metrics);
  EXPECT_EQ(plain.trace, observed.trace);
  EXPECT_EQ(plain.trace_summary, observed.trace_summary);
}

TEST(DeterminismTest, TelemetryPipelineDoesNotPerturbTheSchedule) {
  // The zero-perturbation gate for the telemetry pipeline: the same seeded
  // workload with the time-series layer + flight recorder enabled must
  // produce byte-identical metrics/trace output to the telemetry-off run
  // (windowing and recording never schedule events or consume sim RNG).
  const RunOutput off = RunFig7StyleWorkload(/*analyze_races=*/false);
  const RunOutput on =
      RunFig7StyleWorkload(/*analyze_races=*/false, /*telemetry=*/true);
  EXPECT_EQ(off.metrics, on.metrics);
  EXPECT_EQ(off.trace, on.trace);
  EXPECT_EQ(off.trace_summary, on.trace_summary);
}

TEST(DeterminismTest, HeapSchedulerProducesIdenticalBytes) {
  // The legacy binary-heap scheduler and the default calendar queue must
  // replay the same seeded workload to the byte (RING_SIM_CORE=heap is the
  // baseline leg of BENCH_sim.json; equivalence is what makes the bench's
  // speedup a like-for-like number).
  const RunOutput calendar = RunFig7StyleWorkload(/*analyze_races=*/false);
  setenv("RING_SIM_CORE", "heap", 1);
  const RunOutput heap = RunFig7StyleWorkload(/*analyze_races=*/false);
  unsetenv("RING_SIM_CORE");
  EXPECT_EQ(calendar.metrics, heap.metrics);
  EXPECT_EQ(calendar.trace, heap.trace);
  EXPECT_EQ(calendar.trace_summary, heap.trace_summary);
}

TEST(DeterminismTest, BoxedTaskPoolProducesIdenticalBytes) {
  // Allocator compatibility mode: routing every out-of-line capture through
  // plain new/delete (the pre-pool behaviour) must not move a single event.
  const RunOutput pooled = RunFig7StyleWorkload(/*analyze_races=*/false);
  sim::TaskPool::set_boxed(true);
  const RunOutput boxed = RunFig7StyleWorkload(/*analyze_races=*/false);
  sim::TaskPool::set_boxed(false);
  EXPECT_EQ(pooled.metrics, boxed.metrics);
  EXPECT_EQ(pooled.trace, boxed.trace);
  EXPECT_EQ(pooled.trace_summary, boxed.trace_summary);
}

TEST(DeterminismTest, MultiCoreCpuModelIsDeterministicAndRaceFree) {
  // cores_per_node=2 routes server work through per-key shard homing. Two
  // runs must agree byte-for-byte, and a third run under the race detector
  // must stay quiet (shard homing keeps per-store state single-shard) while
  // perturbing nothing.
  const RunOutput first =
      RunFig7StyleWorkload(/*analyze_races=*/false, /*telemetry=*/false,
                           /*cores_per_node=*/2);
  const RunOutput second =
      RunFig7StyleWorkload(/*analyze_races=*/false, /*telemetry=*/false,
                           /*cores_per_node=*/2);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.trace, second.trace);
  const RunOutput observed =
      RunFig7StyleWorkload(/*analyze_races=*/true, /*telemetry=*/false,
                           /*cores_per_node=*/2);
  EXPECT_EQ(first.metrics, observed.metrics);
  EXPECT_EQ(first.trace, observed.trace);
}

}  // namespace
}  // namespace ring
