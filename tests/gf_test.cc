#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/gf/gf256.h"

namespace ring::gf {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Sub(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Add(0xFF, 0xFF), 0);
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(Mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(Mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(Mul(0, static_cast<uint8_t>(a)), 0);
  }
}

TEST(Gf256Test, KnownProducts) {
  // Spot values for the 0x11D polynomial (AES uses 0x11B; these differ).
  EXPECT_EQ(Mul(2, 128), 29);   // x * x^7 = x^8 = 0x11D - 0x100
  EXPECT_EQ(Mul(4, 128), 58);
  EXPECT_EQ(Mul(3, 3), 5);      // (x+1)^2 = x^2+1
}

TEST(Gf256Test, MulCommutative) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                Mul(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, MulAssociativeSampled) {
  ring::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.NextU64());
    const uint8_t b = static_cast<uint8_t>(rng.NextU64());
    const uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Mul(Mul(a, b), c), Mul(a, Mul(b, c)));
  }
}

TEST(Gf256Test, DistributiveSampled) {
  ring::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.NextU64());
    const uint8_t b = static_cast<uint8_t>(rng.NextU64());
    const uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 7) {
      const uint8_t q =
          Div(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
      EXPECT_EQ(Mul(q, static_cast<uint8_t>(b)), a);
    }
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; a += 11) {
    uint8_t acc = 1;
    for (uint32_t e = 0; e < 10; ++e) {
      EXPECT_EQ(Pow(static_cast<uint8_t>(a), e), acc)
          << "a=" << a << " e=" << e;
      acc = Mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(Gf256Test, PowZeroConventions) {
  EXPECT_EQ(Pow(0, 0), 1);
  EXPECT_EQ(Pow(0, 5), 0);
  EXPECT_EQ(Pow(7, 0), 1);
}

TEST(Gf256Test, MultiplicativeOrderDivides255) {
  // The multiplicative group has order 255; a^255 == 1 for all a != 0.
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(Pow(static_cast<uint8_t>(a), 255), 1);
  }
}

class RegionOpTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RegionOpTest, AddRegionMatchesScalar) {
  const size_t n = GetParam();
  Buffer src = MakePatternBuffer(n, 1);
  Buffer dst = MakePatternBuffer(n, 2);
  Buffer expected = dst;
  for (size_t i = 0; i < n; ++i) {
    expected[i] = Add(expected[i], src[i]);
  }
  AddRegion(src, dst);
  EXPECT_EQ(dst, expected);
}

TEST_P(RegionOpTest, MulRegionMatchesScalar) {
  const size_t n = GetParam();
  Buffer src = MakePatternBuffer(n, 3);
  for (uint8_t c : {0, 1, 2, 91, 255}) {
    Buffer dst(n, 0xAA);
    MulRegion(c, src, dst);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], Mul(c, src[i])) << "c=" << int(c) << " i=" << i;
    }
  }
}

TEST_P(RegionOpTest, MulAddRegionMatchesScalar) {
  const size_t n = GetParam();
  Buffer src = MakePatternBuffer(n, 4);
  for (uint8_t c : {0, 1, 2, 91, 255}) {
    Buffer dst = MakePatternBuffer(n, 5);
    Buffer expected = dst;
    for (size_t i = 0; i < n; ++i) {
      expected[i] = Add(expected[i], Mul(c, src[i]));
    }
    MulAddRegion(c, src, dst);
    ASSERT_EQ(dst, expected) << "c=" << int(c);
  }
}

TEST_P(RegionOpTest, AddRegionSelfIsZero) {
  const size_t n = GetParam();
  Buffer a = MakePatternBuffer(n, 6);
  Buffer dst = a;
  AddRegion(a, dst);
  EXPECT_EQ(dst, Buffer(n, 0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegionOpTest,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 1024,
                                           4096));

TEST(Gf256Test, MulRegionInPlaceIdentityNoCorruption) {
  Buffer buf = MakePatternBuffer(100, 9);
  Buffer copy = buf;
  MulRegion(1, buf, buf);  // aliased identity copy must be a no-op
  EXPECT_EQ(buf, copy);
}

// Dispatch differential tests ------------------------------------------------
// Every compiled-in kernel tier must produce byte-identical output to the
// scalar reference over randomized lengths (sub-vector tails), unaligned
// offsets, coefficients (including the 0/1 fast paths), and aliasing.

std::vector<RegionImpl> AvailableImpls() {
  const RegionImpl prev = ActiveRegionImpl();
  std::vector<RegionImpl> out;
  for (RegionImpl impl : {RegionImpl::kScalar, RegionImpl::kSsse3,
                          RegionImpl::kAvx2, RegionImpl::kNeon}) {
    if (SetRegionImpl(impl) == impl) {
      out.push_back(impl);
    }
  }
  SetRegionImpl(prev);
  return out;
}

// Restores the auto-selected implementation when a test exits.
class ScopedRegionImpl {
 public:
  explicit ScopedRegionImpl(RegionImpl impl) : prev_(ActiveRegionImpl()) {
    SetRegionImpl(impl);
  }
  ~ScopedRegionImpl() { SetRegionImpl(prev_); }

 private:
  RegionImpl prev_;
};

TEST(GfDispatchTest, ReportsActiveImpl) {
  const RegionImpl impl = ActiveRegionImpl();
  EXPECT_STRNE(RegionImplName(impl), "unknown");
  // Forcing the active impl is a no-op that reports itself.
  EXPECT_EQ(SetRegionImpl(impl), impl);
}

TEST(GfDispatchTest, RegionOpsMatchScalarOverRandomizedInputs) {
  ring::Rng rng(1234);
  for (RegionImpl impl : AvailableImpls()) {
    ScopedRegionImpl scoped(impl);
    for (int iter = 0; iter < 400; ++iter) {
      // Lengths cross the 16/32/64-byte vector strips; offsets make both
      // spans unaligned relative to the allocation.
      const size_t len = static_cast<size_t>(rng.NextU64() % 300);
      const size_t src_off = static_cast<size_t>(rng.NextU64() % 16);
      const size_t dst_off = static_cast<size_t>(rng.NextU64() % 16);
      const uint8_t c = static_cast<uint8_t>(rng.NextU64());
      Buffer src_buf = MakePatternBuffer(src_off + len, iter);
      Buffer dst_buf = MakePatternBuffer(dst_off + len, iter + 1000);
      ByteSpan src(src_buf.data() + src_off, len);

      Buffer mul_expected(len);
      Buffer mad_expected(len);
      Buffer add_expected(len);
      for (size_t i = 0; i < len; ++i) {
        const uint8_t d = dst_buf[dst_off + i];
        mul_expected[i] = Mul(c, src[i]);
        mad_expected[i] = Add(d, Mul(c, src[i]));
        add_expected[i] = Add(d, src[i]);
      }

      Buffer work = dst_buf;
      AddRegion(src, MutableByteSpan(work.data() + dst_off, len));
      ASSERT_EQ(Buffer(work.begin() + dst_off, work.end()), add_expected)
          << RegionImplName(impl) << " AddRegion len=" << len;

      work = dst_buf;
      MulRegion(c, src, MutableByteSpan(work.data() + dst_off, len));
      ASSERT_EQ(Buffer(work.begin() + dst_off, work.end()), mul_expected)
          << RegionImplName(impl) << " MulRegion c=" << int(c)
          << " len=" << len;

      work = dst_buf;
      MulAddRegion(c, src, MutableByteSpan(work.data() + dst_off, len));
      ASSERT_EQ(Buffer(work.begin() + dst_off, work.end()), mad_expected)
          << RegionImplName(impl) << " MulAddRegion c=" << int(c)
          << " len=" << len;
    }
  }
}

TEST(GfDispatchTest, LargeRegionsMatchScalar) {
  // One multi-KiB case per impl so the vector main loop (not just tails)
  // is exercised against the scalar reference.
  const size_t n = 65536 + 13;
  Buffer src = MakePatternBuffer(n, 21);
  Buffer dst = MakePatternBuffer(n, 22);
  Buffer expected(n);
  const uint8_t c = 0xB7;
  for (size_t i = 0; i < n; ++i) {
    expected[i] = Add(dst[i], Mul(c, src[i]));
  }
  for (RegionImpl impl : AvailableImpls()) {
    ScopedRegionImpl scoped(impl);
    Buffer work = dst;
    MulAddRegion(c, src, work);
    ASSERT_EQ(work, expected) << RegionImplName(impl);
  }
}

TEST(GfDispatchTest, AliasedSrcDstMatchesScalar) {
  for (RegionImpl impl : AvailableImpls()) {
    ScopedRegionImpl scoped(impl);
    for (uint8_t c : {0, 1, 2, 91, 255}) {
      Buffer buf = MakePatternBuffer(777, 31);
      Buffer mul_expected(buf.size());
      Buffer mad_expected(buf.size());
      for (size_t i = 0; i < buf.size(); ++i) {
        mul_expected[i] = Mul(c, buf[i]);
        mad_expected[i] = Add(buf[i], Mul(c, buf[i]));
      }
      Buffer work = buf;
      MulRegion(c, work, work);
      ASSERT_EQ(work, mul_expected)
          << RegionImplName(impl) << " c=" << int(c);
      work = buf;
      MulAddRegion(c, work, work);
      ASSERT_EQ(work, mad_expected)
          << RegionImplName(impl) << " c=" << int(c);
    }
  }
}

TEST(GfDispatchTest, FusedMultiMatchesSequentialMulAdd) {
  ring::Rng rng(777);
  for (RegionImpl impl : AvailableImpls()) {
    ScopedRegionImpl scoped(impl);
    for (int iter = 0; iter < 60; ++iter) {
      const size_t len = static_cast<size_t>(rng.NextU64() % 500);
      const size_t nsrc = static_cast<size_t>(rng.NextU64() % 8);
      std::vector<Buffer> sources;
      std::vector<const uint8_t*> srcs;
      std::vector<uint8_t> coeffs;
      for (size_t s = 0; s < nsrc; ++s) {
        sources.push_back(MakePatternBuffer(len, iter * 100 + s));
        // Bias toward the special coefficients 0 and 1.
        const uint64_t r = rng.NextU64();
        coeffs.push_back(r % 4 == 0 ? static_cast<uint8_t>(r % 2)
                                    : static_cast<uint8_t>(r));
      }
      for (const auto& b : sources) {
        srcs.push_back(b.data());
      }
      Buffer dst = MakePatternBuffer(len, iter + 5000);
      Buffer expected = dst;
      for (size_t s = 0; s < nsrc; ++s) {
        for (size_t i = 0; i < len; ++i) {
          expected[i] = Add(expected[i], Mul(coeffs[s], sources[s][i]));
        }
      }
      MulAddRegionMulti(coeffs, std::span<const uint8_t* const>(srcs), dst);
      ASSERT_EQ(dst, expected)
          << RegionImplName(impl) << " nsrc=" << nsrc << " len=" << len;

      Buffer enc(len, 0xEE);
      if (!sources.empty()) {
        gf::EncodeRegion(coeffs, std::span<const uint8_t* const>(srcs), enc);
        Buffer enc_expected(len, 0);
        for (size_t s = 0; s < nsrc; ++s) {
          for (size_t i = 0; i < len; ++i) {
            enc_expected[i] =
                Add(enc_expected[i], Mul(coeffs[s], sources[s][i]));
          }
        }
        ASSERT_EQ(enc, enc_expected) << RegionImplName(impl);
      }
    }
  }
}

}  // namespace
}  // namespace ring::gf
