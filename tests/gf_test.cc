#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/gf/gf256.h"

namespace ring::gf {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Sub(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Add(0xFF, 0xFF), 0);
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(Mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(Mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(Mul(0, static_cast<uint8_t>(a)), 0);
  }
}

TEST(Gf256Test, KnownProducts) {
  // Spot values for the 0x11D polynomial (AES uses 0x11B; these differ).
  EXPECT_EQ(Mul(2, 128), 29);   // x * x^7 = x^8 = 0x11D - 0x100
  EXPECT_EQ(Mul(4, 128), 58);
  EXPECT_EQ(Mul(3, 3), 5);      // (x+1)^2 = x^2+1
}

TEST(Gf256Test, MulCommutative) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                Mul(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, MulAssociativeSampled) {
  ring::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.NextU64());
    const uint8_t b = static_cast<uint8_t>(rng.NextU64());
    const uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Mul(Mul(a, b), c), Mul(a, Mul(b, c)));
  }
}

TEST(Gf256Test, DistributiveSampled) {
  ring::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.NextU64());
    const uint8_t b = static_cast<uint8_t>(rng.NextU64());
    const uint8_t c = static_cast<uint8_t>(rng.NextU64());
    EXPECT_EQ(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 7) {
      const uint8_t q =
          Div(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
      EXPECT_EQ(Mul(q, static_cast<uint8_t>(b)), a);
    }
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; a += 11) {
    uint8_t acc = 1;
    for (uint32_t e = 0; e < 10; ++e) {
      EXPECT_EQ(Pow(static_cast<uint8_t>(a), e), acc)
          << "a=" << a << " e=" << e;
      acc = Mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(Gf256Test, PowZeroConventions) {
  EXPECT_EQ(Pow(0, 0), 1);
  EXPECT_EQ(Pow(0, 5), 0);
  EXPECT_EQ(Pow(7, 0), 1);
}

TEST(Gf256Test, MultiplicativeOrderDivides255) {
  // The multiplicative group has order 255; a^255 == 1 for all a != 0.
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(Pow(static_cast<uint8_t>(a), 255), 1);
  }
}

class RegionOpTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RegionOpTest, AddRegionMatchesScalar) {
  const size_t n = GetParam();
  Buffer src = MakePatternBuffer(n, 1);
  Buffer dst = MakePatternBuffer(n, 2);
  Buffer expected = dst;
  for (size_t i = 0; i < n; ++i) {
    expected[i] = Add(expected[i], src[i]);
  }
  AddRegion(src, dst);
  EXPECT_EQ(dst, expected);
}

TEST_P(RegionOpTest, MulRegionMatchesScalar) {
  const size_t n = GetParam();
  Buffer src = MakePatternBuffer(n, 3);
  for (uint8_t c : {0, 1, 2, 91, 255}) {
    Buffer dst(n, 0xAA);
    MulRegion(c, src, dst);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], Mul(c, src[i])) << "c=" << int(c) << " i=" << i;
    }
  }
}

TEST_P(RegionOpTest, MulAddRegionMatchesScalar) {
  const size_t n = GetParam();
  Buffer src = MakePatternBuffer(n, 4);
  for (uint8_t c : {0, 1, 2, 91, 255}) {
    Buffer dst = MakePatternBuffer(n, 5);
    Buffer expected = dst;
    for (size_t i = 0; i < n; ++i) {
      expected[i] = Add(expected[i], Mul(c, src[i]));
    }
    MulAddRegion(c, src, dst);
    ASSERT_EQ(dst, expected) << "c=" << int(c);
  }
}

TEST_P(RegionOpTest, AddRegionSelfIsZero) {
  const size_t n = GetParam();
  Buffer a = MakePatternBuffer(n, 6);
  Buffer dst = a;
  AddRegion(a, dst);
  EXPECT_EQ(dst, Buffer(n, 0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegionOpTest,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 1024,
                                           4096));

TEST(Gf256Test, MulRegionInPlaceIdentityNoCorruption) {
  Buffer buf = MakePatternBuffer(100, 9);
  Buffer copy = buf;
  MulRegion(1, buf, buf);  // aliased identity copy must be a no-op
  EXPECT_EQ(buf, copy);
}

}  // namespace
}  // namespace ring::gf
