#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/gf/gf256.h"
#include "src/srs/address_map.h"
#include "src/srs/srs_code.h"

namespace ring::srs {
namespace {

TEST(SrsCodeTest, CreateValidation) {
  EXPECT_FALSE(SrsCode::Create(3, 1, 2).ok());  // s < k
  EXPECT_FALSE(SrsCode::Create(0, 1, 3).ok());
  EXPECT_TRUE(SrsCode::Create(2, 1, 3).ok());
  EXPECT_TRUE(SrsCode::Create(3, 0, 3).ok());  // no parity (unreliable EC)
}

TEST(SrsCodeTest, GeometryOfPaperExample) {
  // SRS(2,1,3) from paper §3.3: l = lcm(2,3) = 6, 2 chunks per data node,
  // 3 chunks per parity node, 3 mini-stripes.
  auto code = SrsCode::Create(2, 1, 3);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code->l(), 6u);
  EXPECT_EQ(code->chunks_per_data_node(), 2u);
  EXPECT_EQ(code->chunks_per_parity_node(), 3u);
  EXPECT_EQ(code->ministripes(), 3u);
  // Node assignment D1..D6 -> nodes {0,0,1,1,2,2} (figure 1b).
  EXPECT_EQ(code->DataNodeOfChunk(0), 0u);
  EXPECT_EQ(code->DataNodeOfChunk(1), 0u);
  EXPECT_EQ(code->DataNodeOfChunk(2), 1u);
  EXPECT_EQ(code->DataNodeOfChunk(3), 1u);
  EXPECT_EQ(code->DataNodeOfChunk(4), 2u);
  EXPECT_EQ(code->DataNodeOfChunk(5), 2u);
}

TEST(SrsCodeTest, PaperEquation4ParityStructure) {
  // Eqn. 4: P1 = D1 + D4, P2 = D2 + D5, P3 = D3 + D6 (1-indexed).
  auto code = SrsCode::Create(2, 1, 3);
  ASSERT_TRUE(code.ok());
  const Buffer obj = MakePatternBuffer(6 * 8, 42);  // 6 chunks of 8 bytes
  auto enc = code->EncodeObject(obj);
  ASSERT_EQ(enc.chunk_size, 8u);
  ASSERT_EQ(enc.parity_nodes.size(), 1u);
  ASSERT_EQ(enc.parity_nodes[0].size(), 3 * 8u);
  for (uint32_t t = 0; t < 3; ++t) {
    for (size_t b = 0; b < 8; ++b) {
      const uint8_t expected = obj[t * 8 + b] ^ obj[(3 + t) * 8 + b];
      EXPECT_EQ(enc.parity_nodes[0][t * 8 + b], expected) << t << " " << b;
    }
  }
}

TEST(SrsCodeTest, ExpandedMatrixMatchesEquation5Shape) {
  auto code = SrsCode::Create(2, 1, 3);
  ASSERT_TRUE(code.ok());
  gf::Matrix h = code->ExpandedMatrix();
  ASSERT_EQ(h.rows(), 9u);  // l + l*m/k = 6 + 3
  ASSERT_EQ(h.cols(), 6u);
  // Top: identity.
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = 0; j < 6; ++j) {
      EXPECT_EQ(h.At(i, j), i == j ? 1 : 0);
    }
  }
  // Parity rows: [1 0 0 1 0 0], [0 1 0 0 1 0], [0 0 1 0 0 1] (Eqn. 5 with
  // XOR parity).
  for (uint32_t t = 0; t < 3; ++t) {
    for (uint32_t j = 0; j < 6; ++j) {
      EXPECT_EQ(h.At(6 + t, j), (j == t || j == t + 3) ? 1 : 0);
    }
  }
}

TEST(SrsCodeTest, SrsKmkDegeneratesToRs) {
  // SRS(k,m,k) == RS(k,m) (paper §3.3).
  auto code = SrsCode::Create(3, 2, 3);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code->l(), 3u);
  EXPECT_EQ(code->chunks_per_data_node(), 1u);
  EXPECT_EQ(code->ministripes(), 1u);
  const Buffer obj = MakePatternBuffer(3 * 16, 7);
  auto enc = code->EncodeObject(obj);
  // Compare against plain RS over the three 16-byte blocks.
  std::vector<ByteSpan> blocks = {
      ByteSpan(obj.data(), 16), ByteSpan(obj.data() + 16, 16),
      ByteSpan(obj.data() + 32, 16)};
  auto parity = code->rs().Encode(blocks);
  ASSERT_EQ(enc.parity_nodes.size(), 2u);
  EXPECT_EQ(enc.parity_nodes[0], parity[0]);
  EXPECT_EQ(enc.parity_nodes[1], parity[1]);
}

struct SrsParams {
  uint32_t k;
  uint32_t m;
  uint32_t s;
};

class SrsRoundTripTest : public ::testing::TestWithParam<SrsParams> {};

TEST_P(SrsRoundTripTest, EncodeDecodeNoFailures) {
  const auto [k, m, s] = GetParam();
  auto code = SrsCode::Create(k, m, s);
  ASSERT_TRUE(code.ok());
  const Buffer obj = MakePatternBuffer(1000, k * 100 + m * 10 + s);
  auto enc = code->EncodeObject(obj);
  auto dec = code->DecodeObject(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, obj);
}

TEST_P(SrsRoundTripTest, EveryRecoverablePatternDecodes) {
  const auto [k, m, s] = GetParam();
  auto code = SrsCode::Create(k, m, s);
  ASSERT_TRUE(code.ok());
  const Buffer obj = MakePatternBuffer(333, 99);
  const auto clean = code->EncodeObject(obj);

  const uint32_t n = s + m;
  ASSERT_LE(n, 12u);
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<uint32_t> fd;
    std::vector<uint32_t> fp;
    for (uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        (i < s ? fd : fp).push_back(i < s ? i : i - s);
      }
    }
    auto enc = clean;
    for (uint32_t i : fd) {
      enc.data_nodes[i].clear();
    }
    for (uint32_t j : fp) {
      enc.parity_nodes[j].clear();
    }
    auto dec = code->DecodeObject(enc);
    if (code->CanRecover(fd, fp)) {
      ASSERT_TRUE(dec.ok()) << "mask=" << mask;
      ASSERT_EQ(*dec, obj) << "mask=" << mask;
    } else {
      EXPECT_FALSE(dec.ok()) << "mask=" << mask;
    }
  }
}

// The cheap combinatorial recoverability rule must agree with the exact
// rank-based check for every failure pattern.
TEST_P(SrsRoundTripTest, CanRecoverAgreesWithRankCheck) {
  const auto [k, m, s] = GetParam();
  auto code = SrsCode::Create(k, m, s);
  ASSERT_TRUE(code.ok());
  const uint32_t n = s + m;
  ASSERT_LE(n, 12u);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<uint32_t> fd;
    std::vector<uint32_t> fp;
    for (uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        (i < s ? fd : fp).push_back(i < s ? i : i - s);
      }
    }
    EXPECT_EQ(code->CanRecover(fd, fp), code->CanRecoverByRank(fd, fp))
        << "k=" << k << " m=" << m << " s=" << s << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, SrsRoundTripTest,
    ::testing::Values(SrsParams{2, 1, 3}, SrsParams{2, 1, 4},
                      SrsParams{3, 1, 3}, SrsParams{3, 2, 3},
                      SrsParams{3, 2, 6}, SrsParams{3, 1, 5},
                      SrsParams{4, 2, 6}, SrsParams{2, 2, 5},
                      SrsParams{4, 3, 4}, SrsParams{5, 2, 7}),
    [](const ::testing::TestParamInfo<SrsParams>& info) {
      return "k" + std::to_string(info.param.k) + "m" +
             std::to_string(info.param.m) + "s" + std::to_string(info.param.s);
    });

TEST(SrsCodeTest, ToleranceVectorBasics) {
  // SRS(2,1,4) (paper §3.3): always tolerates 1 failure; tolerates a second
  // failure when the two failed nodes hold independent data.
  auto code = SrsCode::Create(2, 1, 4);
  ASSERT_TRUE(code.ok());
  auto f = code->ToleranceVector();
  ASSERT_EQ(f.size(), 6u);  // i = 0..5 (s+m = 5)
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);          // m = 1 always tolerated
  EXPECT_GT(f[2], 0.0);                 // sometimes 2 failures survive
  EXPECT_LT(f[2], 1.0);
  // Paper's appendix example: survives the 2nd failure with probability 2/5.
  EXPECT_NEAR(f[2] * 10.0, 4.0, 1e-9);  // 4 of C(5,2)=10 pairs survive
}

TEST(SrsCodeTest, ToleranceMonotoneNonIncreasing) {
  for (auto [k, m, s] : std::vector<SrsParams>{{2, 1, 3}, {3, 2, 6},
                                               {3, 1, 4}, {4, 2, 5}}) {
    auto code = SrsCode::Create(k, m, s);
    ASSERT_TRUE(code.ok());
    auto f = code->ToleranceVector();
    for (size_t i = 1; i < f.size(); ++i) {
      EXPECT_LE(f[i], f[i - 1] + 1e-12) << "i=" << i;
    }
    // Always tolerates m failures.
    for (uint32_t i = 0; i <= m; ++i) {
      EXPECT_DOUBLE_EQ(f[i], 1.0);
    }
    // Never tolerates more than m parity-node... more than m+? : losing more
    // than m+ (s-k) nodes is always fatal; in particular all-node loss is.
    EXPECT_DOUBLE_EQ(f[s + m], 0.0);
  }
}

TEST(SrsCodeTest, StorageOverhead) {
  auto a = SrsCode::Create(3, 2, 6);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->StorageOverhead(), 1.0 + 2.0 / 3.0, 1e-12);
  auto b = SrsCode::Create(4, 1, 4);
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->StorageOverhead(), 1.25, 1e-12);
}

TEST(SrsCodeTest, SmallObjectsPadAndRoundTrip) {
  auto code = SrsCode::Create(3, 2, 4);
  ASSERT_TRUE(code.ok());
  for (size_t size : {0u, 1u, 5u, 11u, 12u, 13u, 100u}) {
    const Buffer obj = MakePatternBuffer(size, size + 1);
    auto enc = code->EncodeObject(obj);
    auto dec = code->DecodeObject(enc);
    ASSERT_TRUE(dec.ok()) << size;
    EXPECT_EQ(*dec, obj) << size;
  }
}

// ---------------------------------------------------------------------------
// SrsAddressMap

TEST(SrsAddressMapTest, SegmentsCoverRangeContiguously) {
  auto code = SrsCode::Create(3, 2, 4);  // l = 12, l/s = 3, l/k = 4
  ASSERT_TRUE(code.ok());
  SrsAddressMap map(&*code, 64);
  const uint64_t offset = 100;
  const uint64_t length = 1000;
  auto segs = map.MapDataRange(1, offset, length);
  uint64_t expect = offset;
  uint64_t total = 0;
  for (const auto& seg : segs) {
    EXPECT_EQ(seg.node_offset, expect);
    EXPECT_LE(seg.length, 64u);
    EXPECT_LT(seg.rs_block, 3u);
    EXPECT_LT(seg.ministripe, 4u);
    expect += seg.length;
    total += seg.length;
  }
  EXPECT_EQ(total, length);
}

TEST(SrsAddressMapTest, DistinctMinistripesWithinRow) {
  // A data node's row has l/s chunks, all in distinct mini-stripes.
  auto code = SrsCode::Create(2, 1, 3);  // l=6, l/s=2, l/k=3
  ASSERT_TRUE(code.ok());
  SrsAddressMap map(&*code, 16);
  for (uint32_t node = 0; node < 3; ++node) {
    auto segs = map.MapDataRange(node, 0, map.data_row_bytes());
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_NE(segs[0].ministripe, segs[1].ministripe);
  }
}

TEST(SrsAddressMapTest, ParityExtentScalesBySOverK) {
  auto code = SrsCode::Create(2, 1, 4);  // data row = U*1? l=4, l/s=1, l/k=2
  ASSERT_TRUE(code.ok());
  SrsAddressMap map(&*code, 32);
  EXPECT_EQ(map.data_row_bytes(), 32u);
  EXPECT_EQ(map.parity_row_bytes(), 64u);
  // Parity extent is s/k = 2x the data extent (memory imbalance, §5.4).
  EXPECT_EQ(map.ParityExtent(320), 640u);
  EXPECT_EQ(map.ParityExtent(1), 64u);  // rounds up to a whole row
}

TEST(SrsAddressMapTest, DecodeSourcesIdentifyPeers) {
  auto code = SrsCode::Create(2, 1, 3);
  ASSERT_TRUE(code.ok());
  SrsAddressMap map(&*code, 16);
  auto segs = map.MapDataRange(1, 0, 16);  // chunk 2 -> rs block 0? c=2: b=0,t=2
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].rs_block, 0u);
  EXPECT_EQ(segs[0].ministripe, 2u);
  auto sources = map.DecodeSources(segs[0]);
  ASSERT_EQ(sources.size(), 3u);  // k + m
  // Data sources: chunks {2, 5} -> nodes 1 and 2.
  EXPECT_FALSE(sources[0].is_parity);
  EXPECT_EQ(sources[0].node, 1u);
  EXPECT_EQ(sources[0].h_row, 0u);
  EXPECT_FALSE(sources[1].is_parity);
  EXPECT_EQ(sources[1].node, 2u);
  EXPECT_EQ(sources[1].h_row, 1u);
  EXPECT_TRUE(sources[2].is_parity);
  EXPECT_EQ(sources[2].h_row, 2u);
}

// Byte-level end-to-end check: write a pattern across the virtual address
// space of all data nodes, maintain parity via the map, then reconstruct one
// node's bytes from peers + parity using RsCode.
TEST(SrsAddressMapTest, ParityMaintainedViaMapSupportsDecode) {
  auto code = SrsCode::Create(3, 2, 4);
  ASSERT_TRUE(code.ok());
  const uint64_t unit = 32;
  SrsAddressMap map(&*code, unit);
  const uint64_t extent = map.data_row_bytes() * 5;  // 5 rows
  std::vector<Buffer> node_mem(4);
  for (int i = 0; i < 4; ++i) {
    node_mem[i] = MakePatternBuffer(extent, 1000 + i);
  }
  const uint64_t pextent = map.ParityExtent(extent);
  std::vector<Buffer> parity_mem(2, Buffer(pextent, 0));
  // Build parity with MulAddRegion per segment.
  for (uint32_t node = 0; node < 4; ++node) {
    for (const auto& seg : map.MapDataRange(node, 0, extent)) {
      for (uint32_t j = 0; j < 2; ++j) {
        gf::MulAddRegion(
            code->rs().Coefficient(j, seg.rs_block),
            ByteSpan(node_mem[node].data() + seg.node_offset, seg.length),
            MutableByteSpan(parity_mem[j].data() + seg.parity_offset,
                            seg.length));
      }
    }
  }
  // Reconstruct node 2 entirely from the other data nodes + parity 0.
  Buffer rebuilt(extent, 0);
  for (const auto& seg : map.MapDataRange(2, 0, extent)) {
    std::vector<std::pair<uint32_t, ByteSpan>> avail;
    for (const auto& src : map.DecodeSources(seg)) {
      if (!src.is_parity && src.node == 2) {
        continue;  // the failed node
      }
      const Buffer& mem = src.is_parity ? parity_mem[src.node]
                                        : node_mem[src.node];
      avail.emplace_back(src.h_row,
                         ByteSpan(mem.data() + src.offset, seg.length));
    }
    auto data = code->rs().RecoverData(avail);
    ASSERT_TRUE(data.ok());
    std::copy((*data)[seg.rs_block].begin(), (*data)[seg.rs_block].end(),
              rebuilt.begin() + seg.node_offset);
  }
  EXPECT_EQ(rebuilt, node_mem[2]);
}

// Fused stripe encode property: EncodeObject's per-mini-stripe fused parity
// must equal the naive chunk-wise definition (Eqn. 2), under every kernel
// tier the build/CPU offers.
TEST(SrsCodeTest, FusedEncodeObjectMatchesNaiveDefinition) {
  const gf::RegionImpl prev = gf::ActiveRegionImpl();
  auto code = SrsCode::Create(3, 2, 6);
  ASSERT_TRUE(code.ok());
  const Buffer object = MakePatternBuffer(6 * 1000 + 17, 77);
  // Naive reference: split into l padded chunks, then
  // parity[j] chunk t = sum_b g[j][b] * chunk[b*(l/k)+t], scalar field ops.
  const uint32_t l = code->l();
  const size_t cs = (object.size() + l - 1) / l;
  std::vector<Buffer> chunks(l, Buffer(cs, 0));
  for (uint32_t c = 0; c < l; ++c) {
    const size_t begin = static_cast<size_t>(c) * cs;
    for (size_t i = 0; begin + i < object.size() && i < cs; ++i) {
      chunks[c][i] = object[begin + i];
    }
  }
  const uint32_t lk = code->chunks_per_parity_node();
  std::vector<Buffer> naive(code->m(), Buffer(lk * cs, 0));
  for (uint32_t j = 0; j < code->m(); ++j) {
    for (uint32_t t = 0; t < lk; ++t) {
      for (uint32_t b = 0; b < code->k(); ++b) {
        const uint8_t coeff = code->rs().Coefficient(j, b);
        const Buffer& ch = chunks[code->DataChunk(b, t)];
        for (size_t i = 0; i < cs; ++i) {
          naive[j][t * cs + i] =
              gf::Add(naive[j][t * cs + i], gf::Mul(coeff, ch[i]));
        }
      }
    }
  }
  for (gf::RegionImpl impl : {gf::RegionImpl::kScalar, gf::RegionImpl::kSsse3,
                              gf::RegionImpl::kAvx2, gf::RegionImpl::kNeon}) {
    if (gf::SetRegionImpl(impl) != impl) {
      continue;
    }
    const auto enc = code->EncodeObject(object);
    ASSERT_EQ(enc.chunk_size, cs);
    for (uint32_t j = 0; j < code->m(); ++j) {
      ASSERT_EQ(enc.parity_nodes[j], naive[j])
          << "impl=" << gf::RegionImplName(impl) << " parity=" << j;
    }
    // And the full round trip still holds on this tier.
    auto decoded = code->DecodeObject(enc);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, object) << gf::RegionImplName(impl);
  }
  gf::SetRegionImpl(prev);
}

}  // namespace
}  // namespace ring::srs
