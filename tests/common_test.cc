#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace ring {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("key missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not_found: key missing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(TimeoutError("").code(), StatusCode::kTimeout);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
}

Status FailsWhenNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status Propagates(int x) {
  RING_RETURN_IF_ERROR(FailsWhenNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return OutOfRangeError("not positive");
  }
  return x;
}

Result<int> DoubledPositive(int x) {
  RING_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 21);
  Result<int> bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(DoubledPositive(4).ok());
  EXPECT_EQ(*DoubledPositive(4), 8);
  EXPECT_EQ(DoubledPositive(-4).status().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversSmallRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyInverseRate) {
  Rng rng(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(rate);
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(StatsTest, PercentilesOfKnownSequence) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(StatsTest, PercentileCacheInvalidatedByAddAndClear) {
  // Percentile() caches its sorted copy; adding samples (or clearing) must
  // invalidate it, and Add must not disturb insertion order in values().
  Samples s;
  s.Add(3.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 3.0);
  s.Add(0.5);  // below the cached minimum
  s.Add(9.0);  // above the cached maximum
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 9.0);
  const std::vector<double> want = {3.0, 1.0, 0.5, 9.0};
  EXPECT_EQ(s.values(), want);
  s.Clear();
  EXPECT_TRUE(s.empty());
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Median(), 7.0);
}

TEST(StatsTest, SingleSample) {
  Samples s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Median(), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashKey("abc"), HashKey("abc"));
  EXPECT_NE(HashKey("abc"), HashKey("abd"));
  // Shard balance: 3 shards over 30k sequential keys should be near-uniform.
  const uint32_t s = 3;
  std::vector<int> counts(s, 0);
  for (int i = 0; i < 30000; ++i) {
    counts[KeyShard("key-" + std::to_string(i), s)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(BytesTest, PatternBufferDeterministic) {
  Buffer a = MakePatternBuffer(128, 5);
  Buffer b = MakePatternBuffer(128, 5);
  Buffer c = MakePatternBuffer(128, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 128u);
}

TEST(BytesTest, StringRoundTrip) {
  const std::string s = "hello ring";
  EXPECT_EQ(ToString(ToBuffer(s)), s);
}

}  // namespace
}  // namespace ring
