#include <gtest/gtest.h>

#include "src/baselines/baselines.h"

namespace ring::baselines {
namespace {

TEST(MemcachedTest, TcpLatencyDominates) {
  auto system = MakeMemcached();
  const double put = system->MeasurePutLatency(1024, 100).Median();
  const double get = system->MeasureGetLatency(1024, 100).Median();
  // §6.1: "about 55 us which is 10x higher than the REP1 memgest".
  EXPECT_NEAR(put, 55.0, 10.0);
  EXPECT_NEAR(get, 55.0, 10.0);
}

TEST(DareTest, RdmaGetAndQuorumPut) {
  auto system = MakeDare(3);
  const double get = system->MeasureGetLatency(1024, 100).Median();
  const double put = system->MeasurePutLatency(1024, 100).Median();
  // Dare's get matches Ring's RDMA get (~5 us); its put adds one one-sided
  // replication round trip.
  EXPECT_NEAR(get, 5.5, 1.5);
  EXPECT_GT(put, get + 2.0);
  EXPECT_LT(put, 15.0);
}

TEST(DareTest, MorePutReplicationCostsMore) {
  const double r3 = MakeDare(3)->MeasurePutLatency(1024, 50).Median();
  const double r5 = MakeDare(5)->MeasurePutLatency(1024, 50).Median();
  EXPECT_GE(r5, r3);  // extra posted writes serialize on the leader NIC
}

TEST(RamcloudTest, HddBackupsDominatePut) {
  auto system = MakeRamcloud(2);
  const double put = system->MeasurePutLatency(512, 100).Median();
  const double get = system->MeasureGetLatency(512, 100).Median();
  // §6.1: "median 45 us latency of putting objects up to 512 bytes".
  EXPECT_NEAR(put, 45.0, 8.0);
  EXPECT_LT(get, 10.0);
}

TEST(CocytusTest, TwoOrdersSlowerThanRing) {
  auto system = MakeCocytus();
  const double put = system->MeasurePutLatency(1024, 50).Median();
  const double get = system->MeasureGetLatency(1024, 50).Median();
  // §6.1: get ~500 us (100x Ring), put ~30x Ring's SRS32 (~15 us) = ~450 us.
  EXPECT_NEAR(get, 480.0, 80.0);
  EXPECT_NEAR(put, 500.0, 100.0);
  EXPECT_GT(put, get);
}

TEST(BaselinesTest, ThroughputOrdering) {
  // Fig. 9 reference lines: Dare (RDMA, offloaded) well above the TCP
  // systems.
  const double dare = MakeDare(3)->MaxPutThroughput();
  const double memcached = MakeMemcached()->MaxPutThroughput();
  const double cocytus = MakeCocytus()->MaxPutThroughput();
  EXPECT_GT(dare, memcached);
  EXPECT_GT(dare, cocytus);
  EXPECT_GT(dare, 300'000.0);
  EXPECT_LT(memcached, 400'000.0);
}

TEST(BaselinesTest, LatencyGrowsWithObjectSize) {
  auto system = MakeDare(3);
  const double small = system->MeasurePutLatency(16, 50).Median();
  const double large = system->MeasurePutLatency(4096, 50).Median();
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace ring::baselines
