// Tests for the observability layer (src/obs): histogram bucketing, counter
// aggregation, the exact per-op breakdown sweep, and the Chrome trace_event
// export for a tiny 2-node put.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/hub.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(7), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(8), 4);
  for (int b = 1; b < obs::Histogram::kBuckets; ++b) {
    const uint64_t lo = obs::Histogram::BucketLowerBound(b);
    EXPECT_EQ(obs::Histogram::BucketOf(lo), b) << "bucket " << b;
    EXPECT_EQ(obs::Histogram::BucketOf(lo - 1), b - 1) << "bucket " << b;
  }
  EXPECT_EQ(obs::Histogram::BucketOf(~0ULL), obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(5), 16u);
}

TEST(HistogramTest, ObserveAccumulatesAndMerges) {
  obs::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1001u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::BucketOf(1000)), 1u);
  // p100 reports the upper bound of the top occupied bucket (log2 estimate).
  EXPECT_GE(h.ApproxPercentile(100), 1000u);
  EXPECT_EQ(h.ApproxPercentile(0), 0u);

  obs::Histogram other;
  other.Observe(1000);
  other.Observe(5);
  h.MergeFrom(other);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 2006u);
  EXPECT_EQ(h.bucket(obs::Histogram::BucketOf(1000)), 2u);
  EXPECT_EQ(h.max(), 1000u);
}

// ------------------------------------------------------------------ metrics

TEST(MetricsTest, DisabledRecordsNothing) {
  obs::Metrics m;
  m.Inc("x", 5, 0);
  m.Observe("y", 7, 0);
  m.CountLink(0, 1, 100);
  EXPECT_EQ(m.CounterTotal("x"), 0u);
  EXPECT_EQ(m.FindHistogram("y", 0), nullptr);
  EXPECT_EQ(m.LinkBytes(0, 1), 0u);
}

TEST(MetricsTest, CounterAggregationAcrossNodes) {
  obs::Metrics m;
  m.Enable(true);
  m.Inc("server.puts", 3, /*node=*/0, /*memgest=*/1, obs::OpKind::kPut);
  m.Inc("server.puts", 4, /*node=*/1, /*memgest=*/1, obs::OpKind::kPut);
  m.Inc("server.puts", 5, /*node=*/1, /*memgest=*/2, obs::OpKind::kPut);
  m.Inc("other", 100, /*node=*/0);
  EXPECT_EQ(m.CounterValue("server.puts", 0, 1, obs::OpKind::kPut), 3u);
  EXPECT_EQ(m.CounterValue("server.puts", 1, 1, obs::OpKind::kPut), 4u);
  EXPECT_EQ(m.CounterValue("server.puts", 9), 0u);
  // Cluster-wide aggregation sums every {node, memgest, op} key.
  EXPECT_EQ(m.CounterTotal("server.puts"), 12u);
  EXPECT_EQ(m.CounterTotal("other"), 100u);

  m.Observe("lat", 8, 0);
  m.Observe("lat", 16, 1);
  const obs::Histogram agg = m.AggregateHistogram("lat");
  EXPECT_EQ(agg.count(), 2u);
  EXPECT_EQ(agg.sum(), 24u);

  m.CountLink(0, 1, 100);
  m.CountLink(0, 1, 50);
  EXPECT_EQ(m.LinkBytes(0, 1), 150u);
  EXPECT_EQ(m.LinkBytes(1, 0), 0u);
}

// -------------------------------------------------------------------- spans

TEST(TracerTest, DisabledAndCapacity) {
  obs::Tracer t;
  t.Record("a", obs::Category::kCpu, 0, 1, 0, 10);
  EXPECT_TRUE(t.spans().empty());
  t.Enable(true);
  t.set_capacity(2);
  t.Record("a", obs::Category::kCpu, 0, 1, 0, 10);
  t.Record("b", obs::Category::kCpu, 0, 1, 10, 20);
  t.Record("c", obs::Category::kCpu, 0, 1, 20, 30);
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(TracerTest, NestedSpansPartitionTheOpExactly) {
  obs::Tracer t;
  t.Enable(true);
  const uint64_t op = obs::MakeOpId(2, 7);
  t.Record("put", obs::Category::kOp, 2, op, 0, 100);
  t.Record("cpu", obs::Category::kCpu, 0, op, 10, 30);
  // Coding overlaps the tail of the cpu span and wins by priority.
  t.Record("encode", obs::Category::kCoding, 0, op, 20, 40);
  t.Record("wire", obs::Category::kNetwork, 0, op, 50, 60);
  t.Record("egress_queue", obs::Category::kQueue, 0, op, 60, 70);
  // A quorum span contributes to `wait`; spans of other ops are ignored.
  t.Record("quorum_wait", obs::Category::kQuorum, 0, op, 70, 80);
  t.Record("cpu", obs::Category::kCpu, 0, obs::MakeOpId(3, 1), 0, 100);

  const auto breakdowns = t.OpBreakdowns();
  ASSERT_EQ(breakdowns.size(), 1u);
  const obs::OpBreakdown& b = breakdowns[0];
  EXPECT_STREQ(b.name, "put");
  EXPECT_EQ(b.coding_ns, 20u);   // [20,40]
  EXPECT_EQ(b.cpu_ns, 10u);      // [10,20]; [20,30] went to coding
  EXPECT_EQ(b.network_ns, 10u);  // [50,60]
  EXPECT_EQ(b.queue_ns, 10u);    // [60,70]
  EXPECT_EQ(b.wait_ns, 50u);     // [0,10] + [40,50] + [70,100]
  EXPECT_EQ(b.coding_ns + b.cpu_ns + b.network_ns + b.queue_ns + b.wait_ns,
            b.total_ns());
}

TEST(TracerTest, ChildSpansAreClippedToTheOpWindow) {
  obs::Tracer t;
  t.Enable(true);
  const uint64_t op = obs::MakeOpId(0, 1);
  t.Record("put", obs::Category::kOp, 0, op, 100, 200);
  t.Record("cpu", obs::Category::kCpu, 0, op, 50, 150);    // clips to [100,150]
  t.Record("wire", obs::Category::kNetwork, 0, op, 150, 300);  // [150,200]
  const auto breakdowns = t.OpBreakdowns();
  ASSERT_EQ(breakdowns.size(), 1u);
  EXPECT_EQ(breakdowns[0].cpu_ns, 50u);
  EXPECT_EQ(breakdowns[0].network_ns, 50u);
  EXPECT_EQ(breakdowns[0].wait_ns, 0u);
}

// ---------------------------------------------------- Chrome trace golden

// Minimal JSON parser: accepts exactly the RFC 8259 grammar the exporter
// emits; any structural error fails the test.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) { return false; }
      SkipWs();
      if (Peek() != ':') { return false; }
      ++pos_;
      SkipWs();
      if (!Value()) { return false; }
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) { return false; }
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') { return false; }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') { ++pos_; }
      ++pos_;
    }
    if (pos_ >= s_.size()) { return false; }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') { ++pos_; }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) { return false; }
    pos_ += l.size();
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// Extracts the value of `"key":` occurrences following each position where
// `"ph":"X"` appears — just enough scraping to pair B/E events without a
// full DOM.
std::vector<std::pair<char, std::string>> PhAndTid(const std::string& json) {
  std::vector<std::pair<char, std::string>> out;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = json[pos + 6];
    const size_t tid = json.find("\"tid\":", pos);
    size_t end = tid + 6;
    while (end < json.size() && json[end] != ',' && json[end] != '}') {
      ++end;
    }
    out.emplace_back(ph, json.substr(tid + 6, end - tid - 6));
    pos += 6;
  }
  return out;
}

TEST(ChromeTraceTest, TwoNodePutExportsBalancedValidJson) {
  RingOptions o;
  o.s = 1;
  o.d = 1;
  o.clients = 1;
  o.seed = 11;
  RingCluster cluster(o);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableTracing(true);
  auto g = cluster.CreateMemgest(MemgestDescriptor::Replicated(2, "REP2"));
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(cluster.Put("k", std::string("hello"), *g).ok());
  hub.EnableTracing(false);

  const std::string json = hub.tracer().ChromeTraceJson();
  ASSERT_FALSE(hub.tracer().spans().empty());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"put\""), std::string::npos);

  // Every span becomes one B and one E on its thread, properly nested.
  const auto events = PhAndTid(json);
  EXPECT_EQ(events.size(), 2 * hub.tracer().spans().size());
  std::map<std::string, int> depth;
  for (const auto& [ph, tid] : events) {
    ASSERT_TRUE(ph == 'B' || ph == 'E') << ph;
    depth[tid] += ph == 'B' ? 1 : -1;
    ASSERT_GE(depth[tid], 0) << "E before matching B on tid " << tid;
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced B/E on tid " << tid;
  }

  // The put's breakdown partitions its latency exactly (the 1 us acceptance
  // bound holds with zero error by construction).
  const auto breakdowns = hub.tracer().OpBreakdowns();
  ASSERT_FALSE(breakdowns.empty());
  for (const auto& b : breakdowns) {
    EXPECT_EQ(b.coding_ns + b.cpu_ns + b.network_ns + b.queue_ns + b.wait_ns,
              b.total_ns())
        << b.name;
  }
}

TEST(ChromeTraceTest, MetricsCountTheTwoNodePut) {
  RingOptions o;
  o.s = 1;
  o.d = 1;
  o.clients = 1;
  RingCluster cluster(o);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableMetrics(true);
  auto g = cluster.CreateMemgest(MemgestDescriptor::Replicated(2, "REP2"));
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(cluster.Put("k", std::string("hello"), *g).ok());
  ASSERT_TRUE(cluster.Get("k").ok());

  const obs::Metrics& m = hub.metrics();
  EXPECT_EQ(m.CounterTotal("server.puts"), 1u);
  EXPECT_EQ(m.CounterTotal("server.gets"), 1u);
  EXPECT_EQ(m.CounterTotal("server.replica_appends"), 1u);
  EXPECT_GE(m.CounterTotal("server.commits"), 1u);
  EXPECT_GE(m.CounterTotal("net.messages"), 4u);
  EXPECT_GT(m.CounterTotal("cpu.busy_ns"), 0u);
  // The put crossed the coordinator -> replica link.
  uint64_t cross = 0;
  for (const auto& [link, bytes] : m.link_bytes()) {
    if (link.first != link.second) {
      cross += bytes;
    }
  }
  EXPECT_GT(cross, 0u);
}

}  // namespace
}  // namespace ring
