// Tests for the observability layer (src/obs): histogram bucketing, counter
// aggregation, the exact per-op breakdown sweep, and the Chrome trace_event
// export for a tiny 2-node put.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/hub.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(7), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(8), 4);
  for (int b = 1; b < obs::Histogram::kBuckets; ++b) {
    const uint64_t lo = obs::Histogram::BucketLowerBound(b);
    EXPECT_EQ(obs::Histogram::BucketOf(lo), b) << "bucket " << b;
    EXPECT_EQ(obs::Histogram::BucketOf(lo - 1), b - 1) << "bucket " << b;
  }
  EXPECT_EQ(obs::Histogram::BucketOf(~0ULL), obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(5), 16u);
}

TEST(HistogramTest, ObserveAccumulatesAndMerges) {
  obs::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1001u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::BucketOf(1000)), 1u);
  // Percentiles report the geometric midpoint of the selected bucket —
  // within a factor sqrt(2) of the true quantile. 1000 lands in bucket 10
  // ([512, 1023]), whose midpoint is floor(sqrt(512 * 1023)) = 723.
  EXPECT_EQ(obs::Histogram::BucketMidpoint(10), 723u);
  EXPECT_EQ(h.ApproxPercentile(100), 723u);
  EXPECT_EQ(h.ApproxPercentile(0), 0u);

  obs::Histogram other;
  other.Observe(1000);
  other.Observe(5);
  h.MergeFrom(other);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 2006u);
  EXPECT_EQ(h.bucket(obs::Histogram::BucketOf(1000)), 2u);
  EXPECT_EQ(h.max(), 1000u);
}

// ------------------------------------------------------------------ metrics

TEST(MetricsTest, DisabledRecordsNothing) {
  obs::Metrics m;
  m.Inc("x", 5, 0);
  m.Observe("y", 7, 0);
  m.CountLink(0, 1, 100);
  EXPECT_EQ(m.CounterTotal("x"), 0u);
  EXPECT_EQ(m.FindHistogram("y", 0), nullptr);
  EXPECT_EQ(m.LinkBytes(0, 1), 0u);
}

TEST(MetricsTest, CounterAggregationAcrossNodes) {
  obs::Metrics m;
  m.Enable(true);
  m.Inc("server.puts", 3, /*node=*/0, /*memgest=*/1, obs::OpKind::kPut);
  m.Inc("server.puts", 4, /*node=*/1, /*memgest=*/1, obs::OpKind::kPut);
  m.Inc("server.puts", 5, /*node=*/1, /*memgest=*/2, obs::OpKind::kPut);
  m.Inc("other", 100, /*node=*/0);
  EXPECT_EQ(m.CounterValue("server.puts", 0, 1, obs::OpKind::kPut), 3u);
  EXPECT_EQ(m.CounterValue("server.puts", 1, 1, obs::OpKind::kPut), 4u);
  EXPECT_EQ(m.CounterValue("server.puts", 9), 0u);
  // Cluster-wide aggregation sums every {node, memgest, op} key.
  EXPECT_EQ(m.CounterTotal("server.puts"), 12u);
  EXPECT_EQ(m.CounterTotal("other"), 100u);

  m.Observe("lat", 8, 0);
  m.Observe("lat", 16, 1);
  const obs::Histogram agg = m.AggregateHistogram("lat");
  EXPECT_EQ(agg.count(), 2u);
  EXPECT_EQ(agg.sum(), 24u);

  m.CountLink(0, 1, 100);
  m.CountLink(0, 1, 50);
  EXPECT_EQ(m.LinkBytes(0, 1), 150u);
  EXPECT_EQ(m.LinkBytes(1, 0), 0u);
}

// -------------------------------------------------------------------- spans

TEST(TracerTest, DisabledAndCapacity) {
  obs::Tracer t;
  t.Record("a", obs::Category::kCpu, 0, 1, 0, 10);
  EXPECT_TRUE(t.spans().empty());
  t.Enable(true);
  t.set_capacity(2);
  t.Record("a", obs::Category::kCpu, 0, 1, 0, 10);
  t.Record("b", obs::Category::kCpu, 0, 1, 10, 20);
  t.Record("c", obs::Category::kCpu, 0, 1, 20, 30);
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(TracerTest, NestedSpansPartitionTheOpExactly) {
  obs::Tracer t;
  t.Enable(true);
  const uint64_t op = obs::MakeOpId(2, 7);
  t.Record("put", obs::Category::kOp, 2, op, 0, 100);
  t.Record("cpu", obs::Category::kCpu, 0, op, 10, 30);
  // Coding overlaps the tail of the cpu span and wins by priority.
  t.Record("encode", obs::Category::kCoding, 0, op, 20, 40);
  t.Record("wire", obs::Category::kNetwork, 0, op, 50, 60);
  t.Record("egress_queue", obs::Category::kQueue, 0, op, 60, 70);
  // A quorum span contributes to `wait`; spans of other ops are ignored.
  t.Record("quorum_wait", obs::Category::kQuorum, 0, op, 70, 80);
  t.Record("cpu", obs::Category::kCpu, 0, obs::MakeOpId(3, 1), 0, 100);

  const auto breakdowns = t.OpBreakdowns();
  ASSERT_EQ(breakdowns.size(), 1u);
  const obs::OpBreakdown& b = breakdowns[0];
  EXPECT_STREQ(b.name, "put");
  EXPECT_EQ(b.coding_ns, 20u);   // [20,40]
  EXPECT_EQ(b.cpu_ns, 10u);      // [10,20]; [20,30] went to coding
  EXPECT_EQ(b.network_ns, 10u);  // [50,60]
  EXPECT_EQ(b.queue_ns, 10u);    // [60,70]
  EXPECT_EQ(b.wait_ns, 50u);     // [0,10] + [40,50] + [70,100]
  EXPECT_EQ(b.coding_ns + b.cpu_ns + b.network_ns + b.queue_ns + b.wait_ns,
            b.total_ns());
}

TEST(TracerTest, ChildSpansAreClippedToTheOpWindow) {
  obs::Tracer t;
  t.Enable(true);
  const uint64_t op = obs::MakeOpId(0, 1);
  t.Record("put", obs::Category::kOp, 0, op, 100, 200);
  t.Record("cpu", obs::Category::kCpu, 0, op, 50, 150);    // clips to [100,150]
  t.Record("wire", obs::Category::kNetwork, 0, op, 150, 300);  // [150,200]
  const auto breakdowns = t.OpBreakdowns();
  ASSERT_EQ(breakdowns.size(), 1u);
  EXPECT_EQ(breakdowns[0].cpu_ns, 50u);
  EXPECT_EQ(breakdowns[0].network_ns, 50u);
  EXPECT_EQ(breakdowns[0].wait_ns, 0u);
}

// ---------------------------------------------------- Chrome trace golden

// Minimal JSON parser: accepts exactly the RFC 8259 grammar the exporter
// emits; any structural error fails the test.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) { return false; }
      SkipWs();
      if (Peek() != ':') { return false; }
      ++pos_;
      SkipWs();
      if (!Value()) { return false; }
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) { return false; }
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') { return false; }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') { ++pos_; }
      ++pos_;
    }
    if (pos_ >= s_.size()) { return false; }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') { ++pos_; }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) { return false; }
    pos_ += l.size();
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// Extracts the value of `"key":` occurrences following each position where
// `"ph":"X"` appears — just enough scraping to pair B/E events without a
// full DOM.
std::vector<std::pair<char, std::string>> PhAndTid(const std::string& json) {
  std::vector<std::pair<char, std::string>> out;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = json[pos + 6];
    const size_t tid = json.find("\"tid\":", pos);
    size_t end = tid + 6;
    while (end < json.size() && json[end] != ',' && json[end] != '}') {
      ++end;
    }
    out.emplace_back(ph, json.substr(tid + 6, end - tid - 6));
    pos += 6;
  }
  return out;
}

TEST(ChromeTraceTest, TwoNodePutExportsBalancedValidJson) {
  RingOptions o;
  o.s = 1;
  o.d = 1;
  o.clients = 1;
  o.seed = 11;
  RingCluster cluster(o);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableTracing(true);
  auto g = cluster.CreateMemgest(MemgestDescriptor::Replicated(2, "REP2"));
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(cluster.Put("k", std::string("hello"), *g).ok());
  hub.EnableTracing(false);

  const std::string json = hub.tracer().ChromeTraceJson();
  ASSERT_FALSE(hub.tracer().spans().empty());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"put\""), std::string::npos);

  // Every span becomes one B and one E on its thread, properly nested.
  const auto events = PhAndTid(json);
  EXPECT_EQ(events.size(), 2 * hub.tracer().spans().size());
  std::map<std::string, int> depth;
  for (const auto& [ph, tid] : events) {
    ASSERT_TRUE(ph == 'B' || ph == 'E') << ph;
    depth[tid] += ph == 'B' ? 1 : -1;
    ASSERT_GE(depth[tid], 0) << "E before matching B on tid " << tid;
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced B/E on tid " << tid;
  }

  // The put's breakdown partitions its latency exactly (the 1 us acceptance
  // bound holds with zero error by construction).
  const auto breakdowns = hub.tracer().OpBreakdowns();
  ASSERT_FALSE(breakdowns.empty());
  for (const auto& b : breakdowns) {
    EXPECT_EQ(b.coding_ns + b.cpu_ns + b.network_ns + b.queue_ns + b.wait_ns,
              b.total_ns())
        << b.name;
  }
}

TEST(ChromeTraceTest, FaultSpansExportAsInstantEvents) {
  obs::Tracer t;
  t.Enable(true);
  const uint64_t op = obs::MakeOpId(0, 1);
  t.Record("put", obs::Category::kOp, 0, op, 0, 100);
  // Zero-duration fault spans become global instant markers ("ph":"i").
  t.Record("crash", obs::Category::kFault, 3, 0, 40, 40);
  const std::string json = t.ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"name\":\"crash\",\"cat\":\"fault\",\"ph\":\"i\","
                      "\"s\":\"g\""),
            std::string::npos)
      << json;
  // The op span still exports as a balanced B/E pair; the fault marker
  // contributes exactly one event.
  size_t b = 0;
  size_t e = 0;
  size_t i = 0;
  for (const auto& [ph, tid] : PhAndTid(json)) {
    b += ph == 'B';
    e += ph == 'E';
    i += ph == 'i';
  }
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(e, 1u);
  EXPECT_EQ(i, 1u);
}

// -------------------------------------------------------------- time series

// Fixed-clock harness: tests drive sim time by hand.
struct TsFixture {
  uint64_t now = 0;
  obs::TimeSeries ts;
  TsFixture(uint64_t window_ns, size_t capacity, size_t max_series = 16) {
    obs::TimeSeries::Options o;
    o.window_ns = window_ns;
    o.capacity_windows = capacity;
    o.max_series = max_series;
    ts.Configure(o);
    ts.SetClock([this] { return now; });
    ts.Enable(true);
  }
};

TEST(TimeSeriesTest, WindowRolloverAtRingCapacity) {
  TsFixture f(/*window_ns=*/100, /*capacity=*/4);
  f.ts.TrackCounter(obs::kSliOpsOk);
  const obs::MetricKey key{obs::kSliOpsOk, 7, obs::kNoMemgest,
                           obs::OpKind::kPut};
  for (uint64_t w = 0; w < 10; ++w) {
    f.now = w * 100;
    f.ts.OnCounter(key, w + 1);  // window w holds delta w+1
  }
  const auto& s = f.ts.series().at(key);
  // Only the last 4 windows survive the ring.
  EXPECT_EQ(s.first, 6u);
  EXPECT_EQ(s.last, 9u);
  EXPECT_EQ(s.CountAt(5), 0u);  // evicted
  for (uint64_t w = 6; w <= 9; ++w) {
    EXPECT_EQ(s.CountAt(w), w + 1) << "window " << w;
  }
  // A jump past the whole ring zeroes the skipped slots.
  f.now = 2000;  // window 20
  f.ts.OnCounter(key, 5);
  const auto& s2 = f.ts.series().at(key);
  EXPECT_EQ(s2.last, 20u);
  EXPECT_EQ(s2.first, 17u);
  EXPECT_EQ(s2.CountAt(20), 5u);
  EXPECT_EQ(s2.CountAt(19), 0u);
  EXPECT_EQ(s2.CountAt(9), 0u);
}

TEST(TimeSeriesTest, CounterDeltasSurviveRegistryClear) {
  // The registry forwards deltas (not levels), so windowed counts stay
  // correct across Metrics::Clear().
  uint64_t now = 0;
  obs::Metrics m;
  obs::TimeSeries ts;
  obs::TimeSeries::Options o;
  o.window_ns = 100;
  o.capacity_windows = 8;
  ts.Configure(o);
  ts.SetClock([&now] { return now; });
  ts.TrackCounter(obs::kSliOpsOk);
  ts.Enable(true);
  m.AttachTimeSeries(&ts);
  m.Enable(true);

  m.Inc(obs::kSliOpsOk, 5, /*node=*/1);
  m.Clear();  // registry wiped between phases of a run
  EXPECT_EQ(m.CounterTotal(obs::kSliOpsOk), 0u);
  now = 150;  // window 1
  m.Inc(obs::kSliOpsOk, 3, /*node=*/1);
  const obs::MetricKey key{obs::kSliOpsOk, 1, obs::kNoMemgest,
                           obs::OpKind::kNone};
  const auto& s = ts.series().at(key);
  EXPECT_EQ(s.CountAt(0), 5u);
  EXPECT_EQ(s.CountAt(1), 3u);
}

TEST(TimeSeriesTest, EmptyWindowPercentilesAreZero) {
  TsFixture f(/*window_ns=*/100, /*capacity=*/8);
  f.ts.TrackLatency(obs::kSliOpLatencyNs);
  f.ts.TrackCounter(obs::kSliOpsOk);
  const obs::MetricKey lat{obs::kSliOpLatencyNs, 1, obs::kNoMemgest,
                           obs::OpKind::kGet};
  const obs::MetricKey ok{obs::kSliOpsOk, 1, obs::kNoMemgest,
                          obs::OpKind::kGet};
  f.now = 0;
  f.ts.OnSample(lat, 1000);
  f.ts.OnCounter(ok, 1);
  f.now = 250;  // window 2; window 1 stays empty
  f.ts.OnSample(lat, 2000);
  f.ts.OnCounter(ok, 1);

  const auto& s = f.ts.series().at(lat);
  ASSERT_NE(s.HistAt(1), nullptr);
  EXPECT_EQ(s.HistAt(1)->count, 0u);
  EXPECT_EQ(s.HistAt(1)->Percentile(50), 0u);
  EXPECT_EQ(s.HistAt(1)->Percentile(99), 0u);

  const auto rows = f.ts.Slis({});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1].ops_ok, 0u);
  EXPECT_EQ(rows[1].p50_ns, 0u);
  EXPECT_EQ(rows[1].p99_ns, 0u);
  EXPECT_DOUBLE_EQ(rows[1].error_rate, 0.0);
}

TEST(TimeSeriesTest, AvailabilityDipDetected) {
  TsFixture f(/*window_ns=*/1000, /*capacity=*/64);
  f.ts.TrackCounter(obs::kSliOpsOk);
  f.ts.TrackCounter(obs::kSliOpErrors);
  const obs::MetricKey ok{obs::kSliOpsOk, 1, obs::kNoMemgest,
                          obs::OpKind::kPut};
  const obs::MetricKey err{obs::kSliOpErrors, 1, obs::kNoMemgest,
                           obs::OpKind::kPut};
  // Steady 10 acked ops per window, except a two-window outage where only
  // errors complete.
  for (uint64_t w = 0; w < 10; ++w) {
    f.now = w * 1000;
    if (w == 4 || w == 5) {
      f.ts.OnCounter(err, 10);
    } else {
      f.ts.OnCounter(ok, 10);
    }
  }
  const auto rows = f.ts.Slis({});
  ASSERT_EQ(rows.size(), 10u);
  for (uint64_t w = 0; w < 10; ++w) {
    EXPECT_EQ(rows[w].available, w != 4 && w != 5) << "window " << w;
  }
  EXPECT_DOUBLE_EQ(rows[4].error_rate, 1.0);
  EXPECT_GT(rows[0].goodput_per_sec, 0.0);

  const auto dips = obs::FindDips(rows, f.ts.window_ns());
  ASSERT_EQ(dips.size(), 1u);
  EXPECT_EQ(dips[0].first_window, 4u);
  EXPECT_EQ(dips[0].last_window, 5u);
  EXPECT_TRUE(dips[0].recovered);
}

TEST(TimeSeriesTest, MaxSeriesCapDropsNewSeries) {
  TsFixture f(/*window_ns=*/100, /*capacity=*/4, /*max_series=*/2);
  f.ts.TrackCounter(obs::kSliOpsOk);
  for (uint32_t node = 0; node < 5; ++node) {
    f.ts.OnCounter(
        {obs::kSliOpsOk, node, obs::kNoMemgest, obs::OpKind::kPut}, 1);
  }
  EXPECT_EQ(f.ts.series().size(), 2u);
  EXPECT_EQ(f.ts.dropped_series(), 3u);
}

// ---------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, DisabledRecordsNothing) {
  obs::FlightRecorder rec;
  rec.Record(obs::RecKind::kFault, "crash", 1, 0);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Tail(10).empty());
}

TEST(FlightRecorderTest, RingOverwritesOldest) {
  obs::FlightRecorder rec;
  rec.set_capacity(4);
  uint64_t now = 0;
  rec.SetClock([&now] { return now; });
  rec.Enable(true);
  for (uint64_t i = 0; i < 10; ++i) {
    now = i * 10;
    rec.Record(obs::RecKind::kClient, "op_failed", 1, i);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  const auto tail = rec.Tail(10);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().op_id, 6u);  // oldest surviving
  EXPECT_EQ(tail.back().op_id, 9u);
  const auto last2 = rec.Tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].op_id, 8u);
  EXPECT_EQ(last2[1].op_id, 9u);
}

TEST(FlightRecorderTest, BetweenFiltersByTime) {
  obs::FlightRecorder rec;
  rec.set_capacity(16);
  uint64_t now = 0;
  rec.SetClock([&now] { return now; });
  rec.Enable(true);
  for (uint64_t i = 0; i < 8; ++i) {
    now = i * 100;
    rec.Record(obs::RecKind::kNet, "msg_dropped", 0, i);
  }
  const auto mid = rec.Between(200, 400);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.front().t_ns, 200u);
  EXPECT_EQ(mid.back().t_ns, 400u);
  EXPECT_FALSE(obs::FlightRecorder::Format(mid).empty());
}

// ------------------------------------------------------------------- export

TEST(ExportTest, PrometheusTextAndStatsJson) {
  obs::Metrics m;
  m.Enable(true);
  m.Inc("client.ops", 3, /*node=*/7, /*memgest=*/1, obs::OpKind::kPut);
  m.SetGauge("policy.managed_keys", 12);
  m.Observe("client.op_latency_ns", 1000, /*node=*/7, obs::kNoMemgest,
            obs::OpKind::kPut);
  m.CountLink(0, 1, 4096);

  const std::string prom = obs::PrometheusText(m);
  EXPECT_NE(prom.find("# TYPE ring_client_ops_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("ring_client_ops_total{node=\"7\",memgest=\"1\","
                      "op=\"put\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("ring_policy_managed_keys 12"), std::string::npos);
  EXPECT_NE(prom.find("ring_client_op_latency_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("ring_client_op_latency_ns_sum"), std::string::npos);
  EXPECT_NE(prom.find("ring_link_bytes_total{src=\"0\",dst=\"1\"} 4096"),
            std::string::npos);

  const std::string json = obs::StatsJson(m);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  // Stable key schema: all four dimensions always present, null when n/a.
  EXPECT_NE(json.find("{\"name\":\"client.ops\",\"node\":7,\"memgest\":1,"
                      "\"op\":\"put\",\"value\":3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"memgest\":null"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("{\"src\":0,\"dst\":1,\"bytes\":4096}"),
            std::string::npos);
}

TEST(ExportTest, TimeSeriesJsonIsValidAndCarriesSlis) {
  TsFixture f(/*window_ns=*/1000, /*capacity=*/16);
  f.ts.TrackCounter(obs::kSliOpsOk);
  f.ts.TrackLatency(obs::kSliOpLatencyNs);
  const obs::MetricKey ok{obs::kSliOpsOk, 1, obs::kNoMemgest,
                          obs::OpKind::kPut};
  const obs::MetricKey lat{obs::kSliOpLatencyNs, 1, obs::kNoMemgest,
                           obs::OpKind::kPut};
  for (uint64_t w = 0; w < 3; ++w) {
    f.now = w * 1000;
    f.ts.OnCounter(ok, 4);
    f.ts.OnSample(lat, 500 * (w + 1));
  }
  const std::string json = obs::TimeSeriesJson(f.ts);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"window_ns\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"values\":[4,4,4]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slis\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"available\":true"), std::string::npos);
}

// -------------------------------------------------------------- post-mortem

TEST(ReportTest, PostMortemShowsFaultDipAndRecovery) {
  TsFixture f(/*window_ns=*/1000, /*capacity=*/64);
  f.ts.TrackCounter(obs::kSliOpsOk);
  obs::FlightRecorder rec;
  rec.SetClock([&f] { return f.now; });
  rec.Enable(true);

  const obs::MetricKey ok{obs::kSliOpsOk, 1, obs::kNoMemgest,
                          obs::OpKind::kPut};
  for (uint64_t w = 0; w < 10; ++w) {
    f.now = w * 1000;
    if (w == 4) {
      rec.Record(obs::RecKind::kFault, "crash", 3, 0);
      rec.Record(obs::RecKind::kNet, "msg_dropped", 3, 42, 1);
    } else if (w == 6) {
      rec.Record(obs::RecKind::kFault, "recover", 3, 0);
      rec.Record(obs::RecKind::kRecovery, "promotion", 5, 0, 1234);
      f.ts.OnCounter(ok, 10);
    } else {
      f.ts.OnCounter(ok, 10);
    }
  }
  const std::string report = obs::PostMortemReport(f.ts, rec);
  EXPECT_NE(report.find("fault timeline"), std::string::npos);
  EXPECT_NE(report.find("crash"), std::string::npos);
  EXPECT_NE(report.find("msg_dropped=1"), std::string::npos) << report;
  EXPECT_NE(report.find("DIP"), std::string::npos) << report;
  EXPECT_NE(report.find("dip 1:"), std::string::npos) << report;
  EXPECT_NE(report.find("recovered"), std::string::npos);
  EXPECT_NE(report.find("promotion"), std::string::npos);
}

TEST(ChromeTraceTest, MetricsCountTheTwoNodePut) {
  RingOptions o;
  o.s = 1;
  o.d = 1;
  o.clients = 1;
  RingCluster cluster(o);
  obs::Hub& hub = cluster.simulator().hub();
  hub.EnableMetrics(true);
  auto g = cluster.CreateMemgest(MemgestDescriptor::Replicated(2, "REP2"));
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(cluster.Put("k", std::string("hello"), *g).ok());
  ASSERT_TRUE(cluster.Get("k").ok());

  const obs::Metrics& m = hub.metrics();
  EXPECT_EQ(m.CounterTotal("server.puts"), 1u);
  EXPECT_EQ(m.CounterTotal("server.gets"), 1u);
  EXPECT_EQ(m.CounterTotal("server.replica_appends"), 1u);
  EXPECT_GE(m.CounterTotal("server.commits"), 1u);
  EXPECT_GE(m.CounterTotal("net.messages"), 4u);
  EXPECT_GT(m.CounterTotal("cpu.busy_ns"), 0u);
  // The put crossed the coordinator -> replica link.
  uint64_t cross = 0;
  for (const auto& [link, bytes] : m.link_bytes()) {
    if (link.first != link.second) {
      cross += bytes;
    }
  }
  EXPECT_GT(cross, 0u);
}

}  // namespace
}  // namespace ring
