#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/consensus/config.h"
#include "src/consensus/membership.h"
#include "src/net/fabric.h"
#include "src/sim/simulator.h"

namespace ring::consensus {
namespace {

TEST(ClusterConfigTest, InitialLayout) {
  ClusterConfig c = ClusterConfig::Initial(3, 2, 8);
  EXPECT_EQ(c.epoch, 1u);
  EXPECT_EQ(c.num_slots(), 5u);
  for (uint32_t slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(c.NodeOfSlot(slot), slot);
  }
  EXPECT_TRUE(c.IsCoordinator(0));
  EXPECT_TRUE(c.IsCoordinator(2));
  EXPECT_FALSE(c.IsCoordinator(3));  // redundant slot
  EXPECT_FALSE(c.IsCoordinator(6));  // spare
  EXPECT_TRUE(c.CoordinatesShard(1, 1));
  EXPECT_EQ(c.FindSpare(), 5);
}

TEST(ClusterConfigTest, PromoteMovesSlotToSpare) {
  ClusterConfig c = ClusterConfig::Initial(3, 2, 8);
  c.Promote(1, 5);
  EXPECT_EQ(c.epoch, 2u);
  EXPECT_TRUE(c.failed[1]);
  EXPECT_FALSE(c.IsCoordinator(1));
  EXPECT_TRUE(c.IsCoordinator(5));
  EXPECT_TRUE(c.CoordinatesShard(5, 1));
  EXPECT_EQ(c.CoordinatorOfShard(1), 5u);
  EXPECT_EQ(c.FindSpare(), 6);
}

TEST(ClusterConfigTest, SparePoolExhaustion) {
  ClusterConfig c = ClusterConfig::Initial(2, 1, 4);
  c.Promote(0, 3);
  EXPECT_EQ(c.FindSpare(), -1);
}

class MembershipTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNodes = 8;
  MembershipTest()
      : simulator_(7), fabric_(&simulator_, kNodes),
        group_(&fabric_, 3, 2) {
    group_.SetOnConfig([this](net::NodeId node, const ClusterConfig& config) {
      last_config_[node] = config;
    });
  }

  sim::Simulator simulator_;
  net::Fabric fabric_;
  MembershipGroup group_;
  std::map<net::NodeId, ClusterConfig> last_config_;
};

TEST_F(MembershipTest, SteadyStateKeepsEpoch) {
  group_.Start();
  simulator_.RunUntil(500 * sim::kMillisecond);
  EXPECT_EQ(group_.config_changes(), 0u);
  EXPECT_EQ(group_.CurrentLeader(), 0u);
  for (uint32_t n = 0; n < kNodes; ++n) {
    EXPECT_EQ(group_.ConfigView(n).epoch, 1u);
  }
}

TEST_F(MembershipTest, CoordinatorFailurePromotesSpare) {
  group_.Start();
  simulator_.RunUntil(100 * sim::kMillisecond);
  group_.InjectFailure(2);  // coordinator of shard 2
  simulator_.RunUntil(300 * sim::kMillisecond);
  // All live nodes converge on a config where node 5 (first spare) holds
  // shard 2.
  for (uint32_t n = 0; n < kNodes; ++n) {
    if (n == 2) {
      continue;
    }
    const ClusterConfig& c = group_.ConfigView(n);
    EXPECT_GE(c.epoch, 2u) << "node " << n;
    EXPECT_EQ(c.CoordinatorOfShard(2), 5u) << "node " << n;
    EXPECT_TRUE(c.failed[2]);
  }
  // Callbacks fired on live nodes.
  EXPECT_GE(last_config_.size(), kNodes - 1);
}

TEST_F(MembershipTest, SpareFailureOnlyBumpsEpoch) {
  group_.Start();
  simulator_.RunUntil(100 * sim::kMillisecond);
  group_.InjectFailure(7);  // a spare
  simulator_.RunUntil(300 * sim::kMillisecond);
  const ClusterConfig& c = group_.ConfigView(0);
  EXPECT_TRUE(c.failed[7]);
  // Slots unchanged.
  for (uint32_t slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(c.NodeOfSlot(slot), slot);
  }
}

TEST_F(MembershipTest, LeaderFailureElectsLowestSurvivor) {
  group_.Start();
  simulator_.RunUntil(100 * sim::kMillisecond);
  group_.InjectFailure(0);  // the leader (and coordinator of shard 0)
  simulator_.RunUntil(500 * sim::kMillisecond);
  const net::NodeId leader = group_.CurrentLeader();
  EXPECT_EQ(leader, 1u);
  // The dead leader's shard was re-homed to a spare.
  const ClusterConfig& c = group_.ConfigView(1);
  EXPECT_TRUE(c.failed[0]);
  EXPECT_EQ(c.CoordinatorOfShard(0), 5u);
  // Followers learned about the new leader.
  for (uint32_t n = 1; n < kNodes; ++n) {
    EXPECT_EQ(group_.ConfigView(n).leader, 1u) << "node " << n;
  }
}

TEST_F(MembershipTest, ForceDetectSkipsTimeout) {
  group_.Start();
  simulator_.RunUntil(20 * sim::kMillisecond);
  const sim::SimTime before = simulator_.now();
  group_.ForceDetect(3);
  simulator_.RunUntil(before + 5 * sim::kMillisecond);
  // Config change propagated within a heartbeat-free window (no 35 ms
  // timeout involved).
  EXPECT_GE(group_.ConfigView(0).epoch, 2u);
  EXPECT_TRUE(group_.ConfigView(0).failed[3]);
}

TEST_F(MembershipTest, CascadingFailuresConsumeSpares) {
  group_.Start();
  simulator_.RunUntil(50 * sim::kMillisecond);
  group_.InjectFailure(1);
  simulator_.RunUntil(300 * sim::kMillisecond);
  group_.InjectFailure(5);  // the spare that replaced node 1
  simulator_.RunUntil(600 * sim::kMillisecond);
  const ClusterConfig& c = group_.ConfigView(0);
  EXPECT_TRUE(c.failed[1]);
  EXPECT_TRUE(c.failed[5]);
  EXPECT_EQ(c.CoordinatorOfShard(1), 6u);  // next spare took over
}

}  // namespace
}  // namespace ring::consensus
