// Tests for the happens-before race detector (src/analysis/race.h): vector
// clocks, the actor/edge model against a real Fabric, and a seeded protocol
// violation at the ring level proving the detector actually fires.
#include <gtest/gtest.h>

#include <string>

#include "src/analysis/race.h"
#include "src/analysis/vector_clock.h"
#include "src/net/fabric.h"
#include "src/ring/cluster.h"

namespace ring::analysis {
namespace {

TEST(VectorClockTest, TickAndCompare) {
  VectorClock a;
  VectorClock b;
  EXPECT_TRUE(VectorClock::Leq(a, b));  // empty <= empty
  a.Tick(0);
  EXPECT_FALSE(VectorClock::Leq(a, b));
  EXPECT_TRUE(VectorClock::Leq(b, a));
  EXPECT_TRUE(VectorClock::Ordered(a, b));
  b.Tick(2);
  EXPECT_FALSE(VectorClock::Ordered(a, b));  // concurrent
}

TEST(VectorClockTest, MergeIsPointwiseMax) {
  VectorClock a;
  a.Tick(0);
  a.Tick(0);
  VectorClock b;
  b.Tick(1);
  b.MergeFrom(a);
  EXPECT_EQ(b.Get(0), 2u);
  EXPECT_EQ(b.Get(1), 1u);
  EXPECT_TRUE(VectorClock::Leq(a, b));
}

Region HeapRegion(uint64_t lo, uint64_t hi) {
  Region r;
  r.node = 0;
  r.kind = RegionKind::kHeap;
  r.scope = 7;
  r.lo = lo;
  r.hi = hi;
  return r;
}

TEST(RaceDetectorTest, UnorderedWritesFromDistinctActorsConflict) {
  RaceDetector d;
  d.BeginCpuTask(0, nullptr);
  d.OnAccess(HeapRegion(0, 64), AccessKind::kWrite, "a", 10, 1);
  d.EndTask();
  d.BeginCpuTask(1, nullptr);
  d.OnAccess(HeapRegion(32, 96), AccessKind::kWrite, "b", 20, 2);
  d.EndTask();
  ASSERT_EQ(d.races().size(), 1u);
  const RaceReport& r = d.races()[0];
  EXPECT_EQ(r.region.lo, 32u);  // overlap of the two spans
  EXPECT_EQ(r.region.hi, 64u);
  EXPECT_EQ(r.first.time, 10u);
  EXPECT_EQ(r.second.time, 20u);
}

TEST(RaceDetectorTest, SameActorIsSequential) {
  RaceDetector d;
  for (int i = 0; i < 3; ++i) {
    d.BeginCpuTask(0, nullptr);
    d.OnAccess(HeapRegion(0, 64), AccessKind::kWrite, "w", 10 + i, 1);
    d.EndTask();
  }
  EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetectorTest, DisjointSpansAndReadPairsDoNotConflict) {
  RaceDetector d;
  d.BeginCpuTask(0, nullptr);
  d.OnAccess(HeapRegion(0, 32), AccessKind::kWrite, "w", 10, 1);
  d.OnAccess(HeapRegion(64, 96), AccessKind::kRead, "r1", 11, 1);
  d.EndTask();
  d.BeginCpuTask(1, nullptr);
  d.OnAccess(HeapRegion(32, 64), AccessKind::kWrite, "w2", 20, 2);  // disjoint
  d.OnAccess(HeapRegion(64, 96), AccessKind::kRead, "r2", 21, 2);   // R/R
  d.EndTask();
  EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetectorTest, MessageEdgeOrdersAcrossActors) {
  RaceDetector d;
  d.BeginCpuTask(0, nullptr);
  d.OnAccess(HeapRegion(0, 64), AccessKind::kWrite, "w", 10, 1);
  const VectorClock edge = d.CaptureEdge();
  d.EndTask();
  d.BeginCpuTask(1, &edge);  // receive: joins the sender's clock
  d.OnAccess(HeapRegion(0, 64), AccessKind::kWrite, "w2", 20, 2);
  d.EndTask();
  EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetectorTest, AcquireJoinsOneSidedClockIntoCpu) {
  // A one-sided deposit followed by the owner CPU polling it: with the
  // acquire edge the pair is ordered; without it, it races.
  for (const bool with_acquire : {true, false}) {
    RaceDetector d;
    d.BeginCpuTask(0, nullptr);
    const VectorClock edge = d.CaptureEdge();
    d.EndTask();
    d.BeginOneSidedTask(&edge);
    d.OnAccess(HeapRegion(0, 8), AccessKind::kWrite, "deposit", 10, 1);
    if (with_acquire) {
      d.BeginCpuAcquire(1);
      d.EndTask();
    }
    d.EndTask();
    d.BeginCpuTask(1, nullptr);
    d.OnAccess(HeapRegion(0, 8), AccessKind::kRead, "poll", 20, 2);
    d.EndTask();
    EXPECT_EQ(d.races().empty(), with_acquire);
  }
}

// ---- the model wired through a real Fabric --------------------------------

TEST(FabricRaceTest, OneSidedWriteVsCpuWriteRaces) {
  sim::Simulator s(1, sim::kDefaultParams);
  s.EnableRaceDetection();
  net::Fabric fabric(&s, 2);
  RaceDetector* d = s.race();
  Region r;
  r.node = 1;
  r.kind = RegionKind::kHeap;
  r.lo = 0;
  r.hi = 64;
  // Node 1's CPU and a one-sided write from node 0 both touch r with no
  // protocol edge between them.
  fabric.cpu(1).Execute(100, [&] {
    d->OnAccess(r, AccessKind::kWrite, "cpu_write", s.now(), 1);
  });
  fabric.Write(
      0, 1, 64,
      [&] { d->OnAccess(r, AccessKind::kWrite, "nic_write", s.now(), 2); },
      nullptr);
  s.Run();
  ASSERT_EQ(d->races().size(), 1u);
  EXPECT_FALSE(d->Report().empty());
}

TEST(FabricRaceTest, MessageChainOrdersOneSidedWrite) {
  sim::Simulator s(1, sim::kDefaultParams);
  s.EnableRaceDetection();
  net::Fabric fabric(&s, 2);
  RaceDetector* d = s.race();
  Region r;
  r.node = 1;
  r.kind = RegionKind::kHeap;
  r.lo = 0;
  r.hi = 64;
  // Node 1 writes r, then messages node 0, whose handler issues a one-sided
  // write back into r: the Send edge plus QP issue order fences the pair.
  fabric.cpu(1).Execute(100, [&] {
    d->OnAccess(r, AccessKind::kWrite, "cpu_write", s.now(), 1);
    fabric.Send(1, 0, 64, [&] {
      fabric.Write(
          0, 1, 64,
          [&] { d->OnAccess(r, AccessKind::kWrite, "nic_write", s.now(), 2); },
          nullptr);
    });
  });
  s.Run();
  EXPECT_TRUE(d->races().empty()) << d->Report();
}

// ---- seeded violation at the ring level -----------------------------------

// A rogue unfenced one-sided read of the object heap races with the
// coordinator's (and replicas') own appends: the detector must fire, and the
// report must name the recovery read-site. This is the self-test proving the
// consistency_fuzz_test zero-race assertion could fail.
TEST(RingRaceTest, UnfencedOneSidedHeapReadFires) {
  RingOptions options;
  options.seed = 3;
  options.analyze_races = true;
  RingCluster cluster(options);
  const MemgestId g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  ASSERT_TRUE(cluster.Put("victim", std::string(512, 'x'), g).ok());

  RingRuntime& rt = cluster.runtime();
  for (net::NodeId n = 0; n < rt.num_server_nodes(); ++n) {
    RingServer* srv = rt.server(n);
    for (uint32_t shard = 0; shard < options.s * options.groups; ++shard) {
      rt.fabric().Read(
          rt.client_node(0), n, 4096,
          [srv, g, shard] { srv->ReadRawForRecovery(g, shard, 0, 4096); },
          nullptr);
    }
  }
  cluster.RunFor(sim::kMillisecond);

  RaceDetector* race = cluster.simulator().race();
  ASSERT_NE(race, nullptr);
  EXPECT_GT(race->accesses_logged(), 0u);
  ASSERT_FALSE(race->races().empty());
  const std::string report =
      race->Report(&cluster.simulator().hub().tracer());
  EXPECT_NE(report.find("raw_heap_read"), std::string::npos) << report;
}

// The detector must be pure observation: a run with it enabled produces the
// same simulated schedule (validated end-to-end in determinism_test; here we
// check the cheap invariant that it consumed no simulator randomness).
TEST(RingRaceTest, DetectorAbsentWhenNotOptedIn) {
  RingOptions options;
  RingCluster cluster(options);
  EXPECT_EQ(cluster.simulator().race(), nullptr);
}

}  // namespace
}  // namespace ring::analysis
