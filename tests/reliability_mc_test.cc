// Monte-Carlo validation of the Appendix A Markov models.
//
// The CTMC abstracts a physical process: s+m nodes failing independently at
// rate λ, one-at-a-time repairs whose speed depends on whether a data or a
// parity node is down, and data loss exactly when the failed-node set is
// unrecoverable (SrsCode::CanRecover). Here we simulate that *physical*
// process directly and check the model's annual reliability against the
// empirical loss frequency — validating the tolerance-vector and
// hypergeometric-repair abstractions, not just the matrix exponential.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/reliability/models.h"
#include "src/srs/srs_code.h"

namespace ring::reliability {
namespace {

// One year of the physical failure/repair process; returns true if the
// failed set ever became unrecoverable.
bool SimulateYear(const srs::SrsCode& code, double lambda, double mu_data,
                  double mu_parity, Rng& rng) {
  const uint32_t s = code.s();
  const uint32_t m = code.m();
  const uint32_t n = s + m;
  std::vector<bool> failed(n, false);
  uint32_t num_failed = 0;
  double t = 0.0;
  // Repair one node at a time (the model's assumption); repair target is
  // the lowest-index failed node.
  while (t < 1.0) {
    const double fail_rate = (n - num_failed) * lambda;
    double repair_rate = 0.0;
    int repair_target = -1;
    for (uint32_t i = 0; i < n; ++i) {
      if (failed[i]) {
        repair_target = static_cast<int>(i);
        repair_rate = i < s ? mu_data : mu_parity;
        break;
      }
    }
    const double total = fail_rate + repair_rate;
    t += rng.NextExponential(total);
    if (t >= 1.0) {
      break;
    }
    if (rng.NextDouble() < fail_rate / total) {
      // A uniformly random live node fails.
      uint32_t pick = static_cast<uint32_t>(rng.NextBelow(n - num_failed));
      for (uint32_t i = 0; i < n; ++i) {
        if (!failed[i] && pick-- == 0) {
          failed[i] = true;
          ++num_failed;
          break;
        }
      }
      std::vector<uint32_t> fd;
      std::vector<uint32_t> fp;
      for (uint32_t i = 0; i < n; ++i) {
        if (failed[i]) {
          (i < s ? fd : fp).push_back(i < s ? i : i - s);
        }
      }
      if (!code.CanRecover(fd, fp)) {
        return true;  // data loss
      }
    } else if (repair_target >= 0) {
      failed[repair_target] = false;
      --num_failed;
    }
  }
  return false;
}

class MonteCarloTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(MonteCarloTest, ModelMatchesPhysicalProcess) {
  const auto [k, m, s] = GetParam();
  auto code = srs::SrsCode::Create(k, m, s);
  ASSERT_TRUE(code.ok());

  // Aggressive rates so losses are observable with modest trial counts;
  // double-parity codes need harsher conditions to lose data at all.
  Environment env;
  env.node_failure_rate = m >= 2 ? 60.0 : 20.0;  // per year
  env.dataset_bytes =
      (m >= 2 ? 600.0 : 60.0) * (1 << 30);  // dataset size sets rebuild time
  const double lambda = env.node_failure_rate;
  const double mu_parity = RebuildRate(env.dataset_bytes / k, env);
  const double mu_data = mu_parity * static_cast<double>(s) / k;

  SrsModel model(*code, env);
  const double p_model = 1.0 - model.Reliability(1.0);

  Rng rng(k * 10007 + m * 101 + s);
  const int trials = 60'000;
  int losses = 0;
  for (int i = 0; i < trials; ++i) {
    losses += SimulateYear(*code, lambda, mu_data, mu_parity, rng) ? 1 : 0;
  }
  const double p_sim = static_cast<double>(losses) / trials;

  // The CTMC approximates the physical process (notably its repair-mix is
  // hypergeometric rather than exact); require agreement within 25% plus
  // 4 sigma of sampling noise.
  const double sigma = std::sqrt(p_model * (1 - p_model) / trials);
  EXPECT_NEAR(p_sim, p_model, 0.25 * p_model + 4 * sigma)
      << "k=" << k << " m=" << m << " s=" << s << " p_model=" << p_model
      << " p_sim=" << p_sim;
  // And there must be enough signal for the test to mean something.
  EXPECT_GT(losses, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Codes, MonteCarloTest,
    ::testing::Values(std::make_tuple(2u, 1u, 2u), std::make_tuple(2u, 1u, 4u),
                      std::make_tuple(3u, 1u, 3u), std::make_tuple(3u, 2u, 3u),
                      std::make_tuple(3u, 1u, 6u)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t, uint32_t>>&
           info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace ring::reliability
