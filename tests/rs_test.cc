#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/gf/gf256.h"
#include "src/rs/crs_bitmatrix.h"
#include "src/rs/rs_code.h"

namespace ring::rs {
namespace {

std::vector<Buffer> RandomBlocks(uint32_t k, size_t size, uint64_t seed) {
  std::vector<Buffer> blocks;
  for (uint32_t i = 0; i < k; ++i) {
    blocks.push_back(MakePatternBuffer(size, seed * 100 + i));
  }
  return blocks;
}

std::vector<ByteSpan> Spans(const std::vector<Buffer>& blocks) {
  return std::vector<ByteSpan>(blocks.begin(), blocks.end());
}

TEST(RsCodeTest, CreateRejectsBadParams) {
  EXPECT_FALSE(RsCode::Create(0, 1).ok());
  EXPECT_FALSE(RsCode::Create(200, 60).ok());
  EXPECT_TRUE(RsCode::Create(1, 0).ok());
  EXPECT_TRUE(RsCode::Create(3, 2).ok());
}

TEST(RsCodeTest, FirstParityRowIsXor) {
  // The normalized Cauchy construction makes parity 0 the XOR of the data
  // blocks — matching the paper's RS(2,1) example (Eqn. 4).
  for (auto [k, m] : std::vector<std::pair<uint32_t, uint32_t>>{
           {2, 1}, {3, 2}, {5, 4}}) {
    auto code = RsCode::Create(k, m);
    ASSERT_TRUE(code.ok());
    for (uint32_t j = 0; j < k; ++j) {
      EXPECT_EQ(code->Coefficient(0, j), 1);
    }
  }
}

TEST(RsCodeTest, CodingMatrixTopIsIdentity) {
  auto code = RsCode::Create(4, 2);
  ASSERT_TRUE(code.ok());
  const auto& h = code->coding_matrix();
  ASSERT_EQ(h.rows(), 6u);
  ASSERT_EQ(h.cols(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      EXPECT_EQ(h.At(i, j), i == j ? 1 : 0);
    }
  }
}

// MDS property: every square submatrix of G must be nonsingular. Checked
// exhaustively for small parameters.
TEST(RsCodeTest, GeneratorSubmatricesNonsingular) {
  auto code = RsCode::Create(4, 3);
  ASSERT_TRUE(code.ok());
  const auto& g = code->generator();
  // All 1x1.
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NE(g.At(i, j), 0);
    }
  }
  // All 2x2 minors.
  for (size_t i1 = 0; i1 < 3; ++i1) {
    for (size_t i2 = i1 + 1; i2 < 3; ++i2) {
      for (size_t j1 = 0; j1 < 4; ++j1) {
        for (size_t j2 = j1 + 1; j2 < 4; ++j2) {
          const uint8_t det = gf::Add(gf::Mul(g.At(i1, j1), g.At(i2, j2)),
                                      gf::Mul(g.At(i1, j2), g.At(i2, j1)));
          EXPECT_NE(det, 0) << i1 << i2 << j1 << j2;
        }
      }
    }
  }
}

struct RsParams {
  uint32_t k;
  uint32_t m;
};

class RsRecoveryTest : public ::testing::TestWithParam<RsParams> {};

// Exhaustively verify recovery from every erasure pattern of size <= m.
TEST_P(RsRecoveryTest, AllErasurePatternsRecoverable) {
  const auto [k, m] = GetParam();
  auto code = RsCode::Create(k, m);
  ASSERT_TRUE(code.ok());
  const size_t block_size = 64;
  std::vector<Buffer> data = RandomBlocks(k, block_size, k * 10 + m);
  std::vector<Buffer> parity = code->Encode(Spans(data));
  ASSERT_EQ(parity.size(), m);

  const uint32_t n = k + m;
  // Iterate over all subsets of lost blocks with |subset| <= m.
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    const int lost = __builtin_popcount(mask);
    if (lost == 0 || static_cast<uint32_t>(lost) > m) {
      continue;
    }
    std::vector<std::pair<uint32_t, ByteSpan>> available;
    for (uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        continue;
      }
      available.emplace_back(
          i, i < k ? ByteSpan(data[i]) : ByteSpan(parity[i - k]));
    }
    auto recovered = code->RecoverData(available);
    ASSERT_TRUE(recovered.ok()) << "mask=" << mask;
    for (uint32_t i = 0; i < k; ++i) {
      ASSERT_EQ((*recovered)[i], data[i]) << "mask=" << mask << " block=" << i;
    }
  }
}

TEST_P(RsRecoveryTest, RecoverBlocksRebuildsParity) {
  const auto [k, m] = GetParam();
  auto code = RsCode::Create(k, m);
  ASSERT_TRUE(code.ok());
  std::vector<Buffer> data = RandomBlocks(k, 48, 7);
  std::vector<Buffer> parity = code->Encode(Spans(data));
  if (m == 0) {
    return;
  }
  // Lose parity 0 and data 0 (when m >= 2) and rebuild both.
  std::vector<std::pair<uint32_t, ByteSpan>> available;
  for (uint32_t i = 1; i < k; ++i) {
    available.emplace_back(i, ByteSpan(data[i]));
  }
  if (m >= 2) {
    for (uint32_t j = 1; j < m; ++j) {
      available.emplace_back(k + j, ByteSpan(parity[j]));
    }
    available.emplace_back(0 + k, ByteSpan(parity[0]));  // keep parity 0 too
    auto rebuilt = code->RecoverBlocks(available, {0, k});
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ((*rebuilt)[0], data[0]);
    EXPECT_EQ((*rebuilt)[1], parity[0]);
  } else {
    available.emplace_back(0, ByteSpan(data[0]));
    auto rebuilt = code->RecoverBlocks(available, {k});
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ((*rebuilt)[0], parity[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, RsRecoveryTest,
    ::testing::Values(RsParams{2, 1}, RsParams{3, 1}, RsParams{3, 2},
                      RsParams{4, 2}, RsParams{4, 3}, RsParams{5, 2},
                      RsParams{6, 3}, RsParams{1, 1}, RsParams{1, 3}),
    [](const ::testing::TestParamInfo<RsParams>& info) {
      return "k" + std::to_string(info.param.k) + "m" +
             std::to_string(info.param.m);
    });

TEST(RsCodeTest, TooFewBlocksFails) {
  auto code = RsCode::Create(3, 2);
  ASSERT_TRUE(code.ok());
  std::vector<Buffer> data = RandomBlocks(3, 16, 1);
  std::vector<std::pair<uint32_t, ByteSpan>> available = {
      {0, ByteSpan(data[0])}, {1, ByteSpan(data[1])}};
  auto r = code->RecoverData(available);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(RsCodeTest, MismatchedBlockSizesRejected) {
  auto code = RsCode::Create(2, 1);
  ASSERT_TRUE(code.ok());
  Buffer a(16, 1);
  Buffer b(8, 2);
  Buffer p(16, 3);
  std::vector<std::pair<uint32_t, ByteSpan>> available = {
      {0, ByteSpan(a)}, {1, ByteSpan(b)}, {2, ByteSpan(p)}};
  EXPECT_FALSE(code->RecoverData(available).ok());
}

// Delta update equivalence (paper §3.2 "Update"): updating one data block and
// applying parity deltas must equal re-encoding from scratch.
TEST(RsCodeTest, ParityDeltaUpdateMatchesReencode) {
  auto code = RsCode::Create(3, 2);
  ASSERT_TRUE(code.ok());
  const size_t block_size = 96;
  std::vector<Buffer> data = RandomBlocks(3, block_size, 21);
  std::vector<Buffer> parity = code->Encode(Spans(data));

  // Overwrite data block 1.
  Buffer updated = MakePatternBuffer(block_size, 999);
  Buffer delta(block_size);
  for (size_t i = 0; i < block_size; ++i) {
    delta[i] = data[1][i] ^ updated[i];
  }
  for (uint32_t j = 0; j < 2; ++j) {
    code->ApplyParityDelta(j, 1, delta, parity[j]);
  }
  data[1] = updated;
  std::vector<Buffer> expected = code->Encode(Spans(data));
  EXPECT_EQ(parity, expected);
}

TEST(RsCodeTest, CanRecoverRule) {
  auto code = RsCode::Create(3, 2);
  ASSERT_TRUE(code.ok());
  EXPECT_TRUE(code->CanRecover({}));
  EXPECT_TRUE(code->CanRecover({0}));
  EXPECT_TRUE(code->CanRecover({0, 4}));
  EXPECT_FALSE(code->CanRecover({0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Cauchy bitmatrix (XOR-only) encoding

TEST(CrsBitmatrixTest, DimensionsAndDensity) {
  auto code = RsCode::Create(3, 2);
  ASSERT_TRUE(code.ok());
  auto bm = CrsBitmatrix::FromCode(*code);
  EXPECT_EQ(bm.k(), 3u);
  EXPECT_EQ(bm.m(), 2u);
  // Parity row 0 is all-ones in GF (plain XOR): its 8x8 blocks are identity
  // matrices, 8 ones each -> exactly k*8 ones in the first 8 bit-rows.
  size_t first_rows_ones = 0;
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 3 * 8; ++c) {
      first_rows_ones += bm.Bit(r, c);
    }
  }
  EXPECT_EQ(first_rows_ones, 3u * 8);
  // Total density is bounded by the matrix area and is nontrivial.
  EXPECT_GT(bm.Ones(), 3u * 8);
  EXPECT_LT(bm.Ones(), 2u * 8 * 3 * 8);
}

TEST(CrsBitmatrixTest, IdentityBlockForUnitCoefficient) {
  // Coefficient 1 must expand to the 8x8 identity.
  auto code = RsCode::Create(4, 3);
  ASSERT_TRUE(code.ok());
  ASSERT_EQ(code->Coefficient(0, 2), 1);  // row 0 is all ones
  auto bm = CrsBitmatrix::FromCode(*code);
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(bm.Bit(r, 2 * 8 + c), r == c) << r << "," << c;
    }
  }
}

class CrsEquivalenceTest : public ::testing::TestWithParam<RsParams> {};

// The bitmatrix represents the same linear map as the table-based encoder:
// parity output must be byte-identical for every parameter set.
TEST_P(CrsEquivalenceTest, MatchesTableEncoder) {
  const auto [k, m] = GetParam();
  auto code = RsCode::Create(k, m);
  ASSERT_TRUE(code.ok());
  auto bm = CrsBitmatrix::FromCode(*code);
  for (size_t size : {8u, 64u, 1000u}) {
    std::vector<Buffer> data = RandomBlocks(k, size, k * 31 + m);
    const auto table_parity = code->Encode(Spans(data));
    const auto xor_parity = bm.Encode(Spans(data));
    ASSERT_EQ(xor_parity.size(), table_parity.size());
    for (uint32_t j = 0; j < m; ++j) {
      EXPECT_EQ(xor_parity[j], table_parity[j]) << "parity " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, CrsEquivalenceTest,
    ::testing::Values(RsParams{2, 1}, RsParams{3, 2}, RsParams{4, 3},
                      RsParams{6, 3}, RsParams{1, 1}),
    [](const ::testing::TestParamInfo<RsParams>& info) {
      return "k" + std::to_string(info.param.k) + "m" +
             std::to_string(info.param.m);
    });

// And therefore CRS-encoded parity decodes through the unchanged RS path.
TEST(CrsBitmatrixTest, ParityDecodesViaRsCode) {
  auto code = RsCode::Create(3, 2);
  ASSERT_TRUE(code.ok());
  auto bm = CrsBitmatrix::FromCode(*code);
  std::vector<Buffer> data = RandomBlocks(3, 256, 77);
  const auto parity = bm.Encode(Spans(data));
  // Lose data blocks 0 and 2; recover from block 1 + both parities.
  std::vector<std::pair<uint32_t, ByteSpan>> available = {
      {1, ByteSpan(data[1])},
      {3, ByteSpan(parity[0])},
      {4, ByteSpan(parity[1])},
  };
  auto recovered = code->RecoverData(available);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)[0], data[0]);
  EXPECT_EQ((*recovered)[2], data[2]);
}

TEST(RsCodeTest, EncodeEmptyBlocks) {
  auto code = RsCode::Create(2, 1);
  ASSERT_TRUE(code.ok());
  std::vector<Buffer> data(2);
  auto parity = code->Encode(Spans(data));
  ASSERT_EQ(parity.size(), 1u);
  EXPECT_TRUE(parity[0].empty());
}

// Fused encode property: EncodeInto (one pass over all k sources per parity
// block) must equal the naive per-coefficient definition
// parity[j][i] = sum_b g[j][b] * data[b][i], under every kernel tier.
TEST(RsCodeTest, FusedEncodeMatchesNaiveDefinition) {
  const gf::RegionImpl prev = gf::ActiveRegionImpl();
  for (auto [k, m] : {std::pair<uint32_t, uint32_t>{2, 1},
                      std::pair<uint32_t, uint32_t>{3, 2},
                      std::pair<uint32_t, uint32_t>{6, 3}}) {
    auto code = RsCode::Create(k, m);
    ASSERT_TRUE(code.ok());
    const size_t block = 1021;  // odd size: vector strips + scalar tail
    const auto data = RandomBlocks(k, block, k * 10 + m);
    std::vector<Buffer> naive(m, Buffer(block, 0));
    for (uint32_t j = 0; j < m; ++j) {
      for (uint32_t b = 0; b < k; ++b) {
        const uint8_t c = code->Coefficient(j, b);
        for (size_t i = 0; i < block; ++i) {
          naive[j][i] = gf::Add(naive[j][i], gf::Mul(c, data[b][i]));
        }
      }
    }
    for (gf::RegionImpl impl :
         {gf::RegionImpl::kScalar, gf::RegionImpl::kSsse3,
          gf::RegionImpl::kAvx2, gf::RegionImpl::kNeon}) {
      if (gf::SetRegionImpl(impl) != impl) {
        continue;
      }
      std::vector<Buffer> fused(m, Buffer(block, 0xCD));
      std::vector<MutableByteSpan> spans(fused.begin(), fused.end());
      code->EncodeInto(Spans(data), spans);
      for (uint32_t j = 0; j < m; ++j) {
        ASSERT_EQ(fused[j], naive[j])
            << "impl=" << gf::RegionImplName(impl) << " k=" << k
            << " m=" << m << " parity=" << j;
      }
      // Encode() must route through the same fused path.
      EXPECT_EQ(code->Encode(Spans(data)), naive);
    }
  }
  gf::SetRegionImpl(prev);
}

TEST(RsCodeTest, RecoveryIdenticalAcrossKernelTiers) {
  const gf::RegionImpl prev = gf::ActiveRegionImpl();
  auto code = RsCode::Create(4, 2);
  ASSERT_TRUE(code.ok());
  const auto data = RandomBlocks(4, 2048 + 7, 55);
  const auto parity = code->Encode(Spans(data));
  std::vector<std::pair<uint32_t, ByteSpan>> available;
  available.emplace_back(1, ByteSpan(data[1]));
  available.emplace_back(3, ByteSpan(data[3]));
  available.emplace_back(4, ByteSpan(parity[0]));
  available.emplace_back(5, ByteSpan(parity[1]));
  ASSERT_EQ(gf::SetRegionImpl(gf::RegionImpl::kScalar),
            gf::RegionImpl::kScalar);
  auto scalar = code->RecoverData(available);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ((*scalar)[0], data[0]);
  EXPECT_EQ((*scalar)[2], data[2]);
  for (gf::RegionImpl impl : {gf::RegionImpl::kSsse3, gf::RegionImpl::kAvx2,
                              gf::RegionImpl::kNeon}) {
    if (gf::SetRegionImpl(impl) != impl) {
      continue;
    }
    auto vec = code->RecoverData(available);
    ASSERT_TRUE(vec.ok());
    EXPECT_EQ(*vec, *scalar) << gf::RegionImplName(impl);
  }
  gf::SetRegionImpl(prev);
}

}  // namespace
}  // namespace ring::rs
