#include <gtest/gtest.h>

#include "src/cost/pricing.h"

namespace ring::cost {
namespace {

workload::TraceAggregates WriteHeavyTrace() {
  workload::TraceAggregates t;
  t.name = "synthetic-oltp";
  t.writes = 4'000'000;
  t.reads = 1'000'000;
  t.written_bytes = t.writes * 4096;
  t.read_bytes = t.reads * 4096;
  t.footprint_bytes = 20ULL << 30;
  return t;
}

workload::TraceAggregates ReadHeavyTrace() {
  workload::TraceAggregates t;
  t.name = "synthetic-search";
  t.writes = 10'000;
  t.reads = 5'000'000;
  t.written_bytes = t.writes * 15360;
  t.read_bytes = t.reads * 15360;
  t.footprint_bytes = 30ULL << 30;
  return t;
}

TEST(PricingTest, SimpleNormalizesToOne) {
  PricingModel model;
  for (const auto& trace : {WriteHeavyTrace(), ReadHeavyTrace()}) {
    const auto prices = model.NormalizedPrices(trace);
    ASSERT_EQ(prices.size(), 3u);
    const auto& simple = prices[2];
    EXPECT_EQ(simple.scheme, Scheme::kSimple);
    EXPECT_NEAR(simple.total(), 1.0, 1e-9);
  }
}

TEST(PricingTest, WriteHeavyOrderingMatchesPaper) {
  // Paper Fig. 10, Financial traces: cold > hot > simple, cold ~2x hot.
  PricingModel model;
  const auto prices = model.NormalizedPrices(WriteHeavyTrace());
  const double hot = prices[0].total();
  const double cold = prices[1].total();
  EXPECT_GT(cold, hot);
  EXPECT_GT(hot, 1.0);
  EXPECT_NEAR(cold / hot, 2.0, 0.3);
  // Hot's put price is 3x simple's (replication), so with writes dominating
  // hot is close to 3x total.
  EXPECT_NEAR(hot, 3.0, 0.5);
}

TEST(PricingTest, ReadHeavyFavorsNearSimplePrices) {
  // WebSearch-like traces: op costs and transfer dominate; the three schemes
  // are much closer together and hot's write premium is negligible.
  PricingModel model;
  const auto prices = model.NormalizedPrices(ReadHeavyTrace());
  const double hot = prices[0].total();
  const double cold = prices[1].total();
  EXPECT_LT(hot, 1.5);
  EXPECT_LT(cold, 2.0);
}

TEST(PricingTest, ColdStorageComponentIsCheapest) {
  // Cold's raw *storage* component must undercut hot's: 5/3 overhead at the
  // cool price versus 3x at the hot price.
  PricingModel model;
  const auto trace = ReadHeavyTrace();
  const auto hot = model.Price(Scheme::kHot, trace);
  const auto cold = model.Price(Scheme::kCold, trace);
  EXPECT_LT(cold.storage_cost, hot.storage_cost);
  const double expected_ratio = (5.0 / 3.0 * 0.0100) / (3.0 * 0.0184);
  EXPECT_NEAR(cold.storage_cost / hot.storage_cost, expected_ratio, 1e-9);
}

TEST(PricingTest, BreakdownSumsToTotal) {
  PricingModel model;
  const auto c = model.Price(Scheme::kCold, WriteHeavyTrace());
  EXPECT_NEAR(c.total(),
              c.write_cost + c.read_cost + c.transfer_cost + c.storage_cost,
              1e-12);
  EXPECT_GT(c.operation_cost(), 0.0);
}

TEST(PricingTest, Financial1MatchesPaperRatios) {
  // §6.2: "cold storage is 5.5x more expensive than simple storage and 2x
  // more than hot storage for the Financial1 trace."
  PricingModel model;
  const auto traces = workload::PaperTraceAggregates();
  const auto prices = model.NormalizedPrices(traces[0]);
  const double hot = prices[0].total();
  const double cold = prices[1].total();
  EXPECT_NEAR(cold, 5.5, 0.6);
  EXPECT_NEAR(cold / hot, 2.0, 0.25);
}

TEST(SchemeNameTest, Names) {
  EXPECT_EQ(SchemeName(Scheme::kHot), "hot");
  EXPECT_EQ(SchemeName(Scheme::kCold), "cold");
  EXPECT_EQ(SchemeName(Scheme::kSimple), "simple");
}

}  // namespace
}  // namespace ring::cost
