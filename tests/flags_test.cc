#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace ring {
namespace {

FlagSet MakeFlags() {
  FlagSet flags("test");
  flags.DefineString("name", "default", "a string")
      .DefineInt("count", 7, "an int")
      .DefineDouble("rate", 1.5, "a double")
      .DefineBool("verbose", false, "a bool");
  return flags;
}

TEST(FlagsTest, DefaultsApply) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(flags.Parse({}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(flags.Parse({"--name=ring", "--count=42", "--rate=2.25",
                           "--verbose=true"})
                  .ok());
  EXPECT_EQ(flags.GetString("name"), "ring");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 2.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, SpaceSyntaxAndPositional) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(flags.Parse({"run", "--count", "3", "extra"}).ok());
  EXPECT_EQ(flags.GetInt("count"), 3);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagsTest, BareAndNegatedBooleans) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(flags.Parse({"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
  FlagSet flags2 = MakeFlags();
  ASSERT_TRUE(flags2.Parse({"--verbose", "--no-verbose"}).ok());
  EXPECT_FALSE(flags2.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagSet flags = MakeFlags();
  const Status s = flags.Parse({"--bogus=1"});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("--bogus"), std::string::npos);
}

TEST(FlagsTest, TypeValidation) {
  FlagSet flags = MakeFlags();
  EXPECT_FALSE(flags.Parse({"--count=notanumber"}).ok());
  FlagSet flags2 = MakeFlags();
  EXPECT_FALSE(flags2.Parse({"--rate=NaN-ish"}).ok());
  FlagSet flags3 = MakeFlags();
  EXPECT_FALSE(flags3.Parse({"--verbose=maybe"}).ok());
}

TEST(FlagsTest, MissingValueRejected) {
  FlagSet flags = MakeFlags();
  EXPECT_FALSE(flags.Parse({"--count"}).ok());
}

TEST(FlagsTest, UsageListsFlags) {
  FlagSet flags = MakeFlags();
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("an int"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

}  // namespace
}  // namespace ring
