#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/gf/gf256.h"
#include "src/ring/cluster.h"

namespace ring {
namespace {

// A key that hashes to the given shard (deterministic).
Key KeyInShard(uint32_t shard, uint32_t s, int salt = 0) {
  for (int i = 0;; ++i) {
    Key k = "key-" + std::to_string(salt) + "-" + std::to_string(i);
    if (KeyShard(k, s) == shard) {
      return k;
    }
  }
}

TEST(MemgestDescriptorTest, Basics) {
  const auto rep3 = MemgestDescriptor::Replicated(3);
  EXPECT_FALSE(rep3.unreliable());
  EXPECT_EQ(rep3.redundancy(), 2u);
  EXPECT_DOUBLE_EQ(rep3.StorageOverhead(), 3.0);
  EXPECT_EQ(rep3.ToString(), "Rep(3)");

  const auto rep1 = MemgestDescriptor::Replicated(1);
  EXPECT_TRUE(rep1.unreliable());
  EXPECT_EQ(rep1.redundancy(), 0u);

  const auto srs32 = MemgestDescriptor::ErasureCoded(3, 2);
  EXPECT_EQ(srs32.redundancy(), 2u);
  EXPECT_NEAR(srs32.StorageOverhead(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(srs32.ToString(), "SRS(3,2)");
}

TEST(VolatileIndexTest, VersionOrdering) {
  VolatileIndex idx;
  EXPECT_EQ(idx.NextVersion("a"), 1u);
  idx.Add("a", 1, 0);
  idx.Add("a", 3, 1);
  idx.Add("a", 2, 0);
  ASSERT_TRUE(idx.Highest("a").has_value());
  EXPECT_EQ(idx.Highest("a")->version, 3u);
  EXPECT_EQ(idx.Highest("a")->memgest, 1u);
  EXPECT_EQ(idx.NextVersion("a"), 4u);
  idx.Remove("a", 3);
  EXPECT_EQ(idx.Highest("a")->version, 2u);
  idx.Remove("a", 1);
  idx.Remove("a", 2);
  EXPECT_FALSE(idx.Highest("a").has_value());
}

TEST(MetadataTableTest, InsertFindErase) {
  MetadataTable t;
  MetaEntry e;
  e.version = 5;
  e.addr = 100;
  e.len = 8;
  t.Insert("k", e);
  ASSERT_NE(t.Find("k", 5), nullptr);
  EXPECT_EQ(t.Find("k", 5)->addr, 100u);
  EXPECT_EQ(t.Find("k", 4), nullptr);
  EXPECT_EQ(t.entry_count(), 1u);
  e.version = 7;
  t.Insert("k", e);
  EXPECT_EQ(t.Highest("k")->version, 7u);
  EXPECT_EQ(t.VersionsOf("k"), (std::vector<Version>{5, 7}));
  t.Erase("k", 5);
  EXPECT_EQ(t.entry_count(), 1u);
  t.Erase("k", 7);
  EXPECT_EQ(t.Highest("k"), nullptr);
}

TEST(MemgestRegistryTest, CreateAndPlacement) {
  MemgestRegistry reg(3, 2);
  auto rep3 = reg.Create(MemgestDescriptor::Replicated(3));
  ASSERT_TRUE(rep3.ok());
  auto srs = reg.Create(MemgestDescriptor::ErasureCoded(2, 1));
  ASSERT_TRUE(srs.ok());
  EXPECT_EQ(reg.count(), 2u);
  EXPECT_EQ(reg.default_id(), *rep3);

  const MemgestInfo* info = reg.Get(*rep3);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(reg.ReplicaSlots(*info, 0), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(reg.ReplicaSlots(*info, 2), (std::vector<uint32_t>{3, 4}));

  const MemgestInfo* ec = reg.Get(*srs);
  ASSERT_NE(ec, nullptr);
  ASSERT_NE(ec->code, nullptr);
  EXPECT_EQ(ec->code->s(), 3u);
  EXPECT_EQ(reg.ParitySlots(*ec, 0), (std::vector<uint32_t>{3}));

  // Validation.
  EXPECT_FALSE(reg.Create(MemgestDescriptor::Replicated(6)).ok());   // > s+d
  EXPECT_FALSE(reg.Create(MemgestDescriptor::ErasureCoded(4, 1)).ok());  // k>s
  EXPECT_FALSE(reg.Create(MemgestDescriptor::ErasureCoded(3, 3)).ok());  // m>d
}

// ---------------------------------------------------------------------------
// End-to-end KVS behaviour

class RingKvsTest : public ::testing::Test {
 protected:
  RingOptions DefaultOptions() {
    RingOptions o;
    o.s = 3;
    o.d = 2;
    o.spares = 2;
    o.clients = 2;
    o.seed = 99;
    return o;
  }

  void SetUpCluster(RingOptions o) {
    cluster_ = std::make_unique<RingCluster>(o);
    rep1_ = *cluster_->CreateMemgest(MemgestDescriptor::Replicated(1, "rep1"));
    rep3_ = *cluster_->CreateMemgest(MemgestDescriptor::Replicated(3, "rep3"));
    srs21_ =
        *cluster_->CreateMemgest(MemgestDescriptor::ErasureCoded(2, 1, "srs21"));
    srs32_ =
        *cluster_->CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "srs32"));
  }

  void SetUp() override { SetUpCluster(DefaultOptions()); }

  std::unique_ptr<RingCluster> cluster_;
  MemgestId rep1_ = 0;
  MemgestId rep3_ = 0;
  MemgestId srs21_ = 0;
  MemgestId srs32_ = 0;
};

TEST_F(RingKvsTest, PutGetRoundTripAllMemgests) {
  for (MemgestId g : {rep1_, rep3_, srs21_, srs32_}) {
    for (size_t size : {1u, 17u, 1024u, 5000u}) {
      const Key key = "k-" + std::to_string(g) + "-" + std::to_string(size);
      const Buffer value = MakePatternBuffer(size, g * 1000 + size);
      ASSERT_TRUE(cluster_->Put(key, value, g).ok()) << g << " " << size;
      auto got = cluster_->Get(key);
      ASSERT_TRUE(got.ok()) << g << " " << size;
      EXPECT_EQ(*got, value) << g << " " << size;
    }
  }
}

TEST_F(RingKvsTest, GetMissingKeyIsNotFound) {
  auto got = cluster_->Get("nope");
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST_F(RingKvsTest, OverwriteReturnsLatest) {
  const Key key = "overwrite";
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        cluster_->Put(key, "value-" + std::to_string(i), rep3_).ok());
  }
  auto got = cluster_->Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "value-4");
}

TEST_F(RingKvsTest, OverwriteAcrossMemgests) {
  // Paper §5.2: versions may live in different memgests; the highest wins.
  const Key key = "cross";
  ASSERT_TRUE(cluster_->Put(key, "in-rep3", rep3_).ok());
  ASSERT_TRUE(cluster_->Put(key, "in-srs32", srs32_).ok());
  ASSERT_TRUE(cluster_->Put(key, "in-rep1", rep1_).ok());
  auto got = cluster_->Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "in-rep1");
}

TEST_F(RingKvsTest, DeleteRemovesKey) {
  const Key key = "todelete";
  ASSERT_TRUE(cluster_->Put(key, "payload", rep3_).ok());
  ASSERT_TRUE(cluster_->Delete(key).ok());
  auto got = cluster_->Get(key);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  // Deleting a missing key reports NotFound.
  EXPECT_EQ(cluster_->Delete("never-existed").code(), StatusCode::kNotFound);
}

TEST_F(RingKvsTest, PutAfterDeleteRevives) {
  const Key key = "lazarus";
  ASSERT_TRUE(cluster_->Put(key, "v1", rep3_).ok());
  ASSERT_TRUE(cluster_->Delete(key).ok());
  ASSERT_TRUE(cluster_->Put(key, "v2", srs21_).ok());
  auto got = cluster_->Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "v2");
}

TEST_F(RingKvsTest, MoveAcrossMemgestsPreservesValue) {
  const Buffer value = MakePatternBuffer(2048, 7);
  const Key key = "mover";
  ASSERT_TRUE(cluster_->Put(key, value, rep1_).ok());
  // rep1 -> srs32 -> rep3 -> srs21 -> rep1
  for (MemgestId dst : {srs32_, rep3_, srs21_, rep1_}) {
    ASSERT_TRUE(cluster_->Move(key, dst).ok()) << dst;
    auto got = cluster_->Get(key);
    ASSERT_TRUE(got.ok()) << dst;
    EXPECT_EQ(*got, value) << dst;
  }
}

TEST_F(RingKvsTest, MoveMissingKeyIsNotFound) {
  EXPECT_EQ(cluster_->Move("ghost", rep3_).code(), StatusCode::kNotFound);
}

TEST_F(RingKvsTest, PutToUnknownMemgestRejected) {
  EXPECT_EQ(cluster_->Put("k", "v", 999).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RingKvsTest, ConcurrentPutsSerializeByVersion) {
  // Two clients race puts on one key; a subsequent read must return the
  // version committed last (highest version; Fig. 5 semantics).
  const Key key = "race";
  int done = 0;
  cluster_->client(0).Put(key, std::make_shared<Buffer>(ToBuffer("from-0")),
                          srs32_, [&](Status s, Version) {
                            EXPECT_TRUE(s.ok()) << s;
                            ++done;
                          });
  cluster_->client(1).Put(key, std::make_shared<Buffer>(ToBuffer("from-1")),
                          rep1_, [&](Status s, Version) {
                            EXPECT_TRUE(s.ok()) << s;
                            ++done;
                          });
  ASSERT_TRUE(cluster_->RunUntilDone([&] { return done == 2; }));
  auto got = cluster_->Get(key);
  ASSERT_TRUE(got.ok());
  // Both committed; the get sees whichever version is higher — determined
  // by coordinator arrival order, not by commit speed. The value must be
  // one of the two, and repeated gets agree (strong consistency).
  const std::string v1 = ToString(*got);
  EXPECT_TRUE(v1 == "from-0" || v1 == "from-1");
  auto again = cluster_->Get(key, 1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ToString(*again), v1);
}

TEST_F(RingKvsTest, GetIssuedDuringSlowPutReturnsNewVersion) {
  // Fig. 5 client D: a get that observes an uncommitted higher version is
  // deferred and answers with that version once committed.
  const Key key = "deferred";
  ASSERT_TRUE(cluster_->Put(key, "old", rep1_).ok());
  bool put_done = false;
  bool get_done = false;
  Buffer got_value;
  // Slow put (4 KiB into SRS32: GF delta work + two parity round trips keep
  // the version uncommitted for ~10 us) with a get injected mid-window: the
  // write-ahead version exists but is not yet durable when the get is
  // processed, so the reply must be deferred to commit time (Fig. 5).
  const Buffer new_value = MakePatternBuffer(4096, 1234);
  cluster_->client(0).Put(key, std::make_shared<Buffer>(new_value), srs32_,
                          [&](Status s, Version) {
                            EXPECT_TRUE(s.ok());
                            put_done = true;
                          });
  cluster_->simulator().After(10 * sim::kMicrosecond, [&] {
    cluster_->client(1).Get(key, [&](GetResult r) {
      ASSERT_TRUE(r.status.ok());
      got_value = *r.data;
      get_done = true;
    });
  });
  ASSERT_TRUE(cluster_->RunUntilDone([&] { return put_done && get_done; }));
  EXPECT_EQ(got_value, new_value);
  const net::NodeId coord = KeyShard(key, 3);
  EXPECT_GT(cluster_->server(coord).counters().deferred_gets, 0u);
}

TEST_F(RingKvsTest, ParityInvariantHoldsAfterChurn) {
  // White-box: after puts, overwrites, moves and deletes, every parity
  // node's buffer must equal the SRS-encoding of the data heaps.
  auto& rt = cluster_->runtime();
  const MemgestInfo* info = rt.registry().Get(srs32_);
  ASSERT_NE(info, nullptr);
  for (int i = 0; i < 40; ++i) {
    const Key key = "churn-" + std::to_string(i % 13);
    ASSERT_TRUE(cluster_
                    ->Put(key, MakePatternBuffer(64 + 97 * i % 3000, i),
                          srs32_)
                    .ok());
    if (i % 5 == 2) {
      ASSERT_TRUE(cluster_->Move(key, srs32_).ok()) << i;
    }
    if (i % 7 == 3) {
      ASSERT_TRUE(cluster_->Delete(key).ok()) << i;
    }
  }
  cluster_->RunFor(5 * sim::kMillisecond);  // drain async GC notices

  const uint32_t s = 3;
  for (uint32_t j = 0; j < 2; ++j) {
    auto& parity_server = cluster_->server(s + j);
    // Expected parity: encode all data heaps through the address map.
    uint64_t max_extent = 0;
    for (uint32_t shard = 0; shard < s; ++shard) {
      max_extent = std::max(
          max_extent, cluster_->server(shard).HeapExtent(srs32_, shard));
    }
    const uint64_t pextent = info->map->ParityExtent(max_extent);
    Buffer expected(pextent, 0);
    for (uint32_t shard = 0; shard < s; ++shard) {
      const uint64_t extent =
          cluster_->server(shard).HeapExtent(srs32_, shard);
      Buffer heap = cluster_->server(shard).ReadRawForRecovery(
          srs32_, shard, 0, static_cast<uint32_t>(extent));
      for (const auto& seg : info->map->MapDataRange(shard, 0, extent)) {
        gf::MulAddRegion(
            info->code->rs().Coefficient(j, seg.rs_block),
            ByteSpan(heap.data() + seg.node_offset, seg.length),
            MutableByteSpan(expected.data() + seg.parity_offset, seg.length));
      }
    }
    Buffer actual = parity_server.ReadRawParity(
        srs32_, /*group=*/0, 0, static_cast<uint32_t>(pextent));
    EXPECT_EQ(actual, expected) << "parity node " << j;
  }
}

TEST_F(RingKvsTest, StorageOverheadMatchesSchemes) {
  // Fresh cluster per scheme keeps the accounting clean.
  for (auto [desc, factor] :
       std::vector<std::pair<MemgestDescriptor, double>>{
           {MemgestDescriptor::Replicated(1), 1.0},
           {MemgestDescriptor::Replicated(3), 3.0},
           {MemgestDescriptor::ErasureCoded(3, 2), 5.0 / 3.0},
       }) {
    RingCluster cluster(DefaultOptions());
    auto g = cluster.CreateMemgest(desc);
    ASSERT_TRUE(g.ok());
    const size_t object = 4096;
    const int n = 30;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(cluster
                      .Put("k" + std::to_string(i),
                           MakePatternBuffer(object, i), *g)
                      .ok());
    }
    cluster.RunFor(2 * sim::kMillisecond);
    uint64_t stored = 0;
    for (net::NodeId node = 0; node < 5; ++node) {
      stored += cluster.server(node).StoredBytes();
    }
    const double ratio =
        static_cast<double>(stored) / (static_cast<double>(object) * n);
    // Parity extents round up to whole rows, so allow ~25% slack.
    EXPECT_NEAR(ratio, factor, factor * 0.30) << desc.ToString();
  }
}

// ---------------------------------------------------------------------------
// Failures and recovery

TEST_F(RingKvsTest, CoordinatorFailureRecoversReplicatedData) {
  const uint32_t victim_shard = 1;  // node 1: coordinator, not the leader
  std::vector<std::pair<Key, Buffer>> data;
  for (int i = 0; i < 10; ++i) {
    Key key = KeyInShard(victim_shard, 3, i);
    Buffer value = MakePatternBuffer(700 + i * 31, i);
    ASSERT_TRUE(cluster_->Put(key, value, rep3_).ok());
    data.emplace_back(std::move(key), std::move(value));
  }
  cluster_->KillNode(1, /*force_detect=*/true);
  cluster_->RunFor(2 * sim::kMillisecond);
  // The spare (node 5) must now coordinate shard 1 and serve all keys,
  // recovering data from replicas on demand.
  for (const auto& [key, value] : data) {
    auto got = cluster_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
  EXPECT_GT(cluster_->server(5).counters().blocks_recovered, 0u);
}

TEST_F(RingKvsTest, CoordinatorFailureRecoversErasureCodedData) {
  const uint32_t victim_shard = 2;
  std::vector<std::pair<Key, Buffer>> data;
  for (int i = 0; i < 8; ++i) {
    Key key = KeyInShard(victim_shard, 3, 100 + i);
    Buffer value = MakePatternBuffer(900 + i * 57, 100 + i);
    ASSERT_TRUE(cluster_->Put(key, value, srs32_).ok());
    data.emplace_back(std::move(key), std::move(value));
  }
  cluster_->KillNode(2, /*force_detect=*/true);
  cluster_->RunFor(2 * sim::kMillisecond);
  for (const auto& [key, value] : data) {
    auto got = cluster_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;  // decoded via parity, byte-exact
  }
}

TEST_F(RingKvsTest, UnreliableMemgestLosesDataOnFailure) {
  const uint32_t victim_shard = 1;
  const Key key = KeyInShard(victim_shard, 3, 500);
  ASSERT_TRUE(cluster_->Put(key, "ephemeral", rep1_).ok());
  // A reliably stored key on the same shard survives.
  const Key safe = KeyInShard(victim_shard, 3, 501);
  ASSERT_TRUE(cluster_->Put(safe, "durable", rep3_).ok());
  cluster_->KillNode(1, /*force_detect=*/true);
  cluster_->RunFor(2 * sim::kMillisecond);
  auto lost = cluster_->Get(key);
  EXPECT_FALSE(lost.ok());
  auto kept = cluster_->Get(safe);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(ToString(*kept), "durable");
}

TEST_F(RingKvsTest, ParityNodeFailureRebuildsAndServes) {
  std::vector<std::pair<Key, Buffer>> data;
  for (int i = 0; i < 6; ++i) {
    Key key = "pf-" + std::to_string(i);
    Buffer value = MakePatternBuffer(1200 + i * 13, i);
    ASSERT_TRUE(cluster_->Put(key, value, srs32_).ok());
    data.emplace_back(std::move(key), std::move(value));
  }
  // Node 3 hosts parity 0 of srs32 (and srs21).
  cluster_->KillNode(3, /*force_detect=*/true);
  cluster_->RunFor(10 * sim::kMillisecond);  // promotion + parity rebuild
  // New puts to the EC memgest still commit (the promoted parity answers).
  ASSERT_TRUE(cluster_->Put("pf-new", MakePatternBuffer(800, 42), srs32_)
                  .ok());
  // Now kill a data node; decode must work off the REBUILT parity.
  const uint32_t victim_shard = 0;
  Key key0 = KeyInShard(victim_shard, 3, 900);
  Buffer value0 = MakePatternBuffer(2222, 900);
  ASSERT_TRUE(cluster_->Put(key0, value0, srs32_).ok());
  // Node 0 is also the membership leader: detection requires an election,
  // so give the cluster the full heartbeat/election window.
  cluster_->KillNode(0, /*force_detect=*/false);
  cluster_->RunFor(150 * sim::kMillisecond);
  auto got = cluster_->Get(key0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value0);
}

TEST_F(RingKvsTest, FailureDetectedByHeartbeatsWithoutForce) {
  const Key key = KeyInShard(1, 3, 777);
  ASSERT_TRUE(cluster_->Put(key, "hb-survives", rep3_).ok());
  cluster_->KillNode(1, /*force_detect=*/false);
  // Heartbeat timeout (35 ms) + recovery, then reads succeed again.
  cluster_->RunFor(80 * sim::kMillisecond);
  auto got = cluster_->Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "hb-survives");
}

TEST_F(RingKvsTest, MetadataRecoveryLatencyIsMicroseconds) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster_
                    ->Put(KeyInShard(1, 3, i), MakePatternBuffer(256, i),
                          rep3_)
                    .ok());
  }
  cluster_->KillNode(1, /*force_detect=*/true);
  cluster_->RunFor(5 * sim::kMillisecond);
  auto& spare = cluster_->server(5);
  EXPECT_TRUE(spare.serving());
  EXPECT_GT(spare.last_recovery_ns(), 0u);
  EXPECT_LT(spare.last_recovery_ns(), 2 * sim::kMillisecond);
}

TEST_F(RingKvsTest, MemgestDeleteRemovesKeys) {
  auto temp = cluster_->CreateMemgest(MemgestDescriptor::Replicated(2, "t"));
  ASSERT_TRUE(temp.ok());
  ASSERT_TRUE(cluster_->Put("t-key", "gone-soon", *temp).ok());
  ASSERT_TRUE(cluster_->DeleteMemgest(*temp).ok());
  cluster_->RunFor(1 * sim::kMillisecond);
  auto got = cluster_->Get("t-key");
  EXPECT_FALSE(got.ok());
  // Further puts to it fail.
  EXPECT_EQ(cluster_->Put("x", "y", *temp).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RingKvsTest, SetDefaultMemgestRoutesPlainPuts) {
  ASSERT_TRUE(cluster_->SetDefaultMemgest(srs21_).ok());
  ASSERT_TRUE(cluster_->Put("plain", "to-default").ok());
  auto got = cluster_->Get("plain");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "to-default");
  // White-box: the entry landed in srs21's metadata on the coordinator.
  const uint32_t shard = KeyShard("plain", 3);
  auto& server = cluster_->server(shard);
  EXPECT_GT(server.counters().puts, 0u);
}

TEST_F(RingKvsTest, GetMemgestDescriptorRoundTrip) {
  auto desc = cluster_->GetMemgestDescriptor(srs32_);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->kind, SchemeKind::kErasureCoded);
  EXPECT_EQ(desc->k, 3u);
  EXPECT_EQ(desc->m, 2u);
  EXPECT_EQ(desc->name, "srs32");
  auto missing = cluster_->GetMemgestDescriptor(999);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(RingKvsTest, FullSyncReplicationCommitsAndReads) {
  auto fs = cluster_->CreateMemgest(MemgestDescriptor::FullSyncReplicated(3));
  ASSERT_TRUE(fs.ok());
  const Buffer value = MakePatternBuffer(900, 4);
  ASSERT_TRUE(cluster_->Put("fsync", value, *fs).ok());
  auto got = cluster_->Get("fsync");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
  // Full-sync puts are slower than quorum (wait for all replicas), faster
  // than erasure coding.
  auto& client = cluster_->client(0);
  client.ResetStats();
  ASSERT_TRUE(cluster_->Put("fsync2", value, *fs).ok());
  const double full_sync_lat = client.latencies().values().back();
  client.ResetStats();
  ASSERT_TRUE(cluster_->Put("q", value, rep3_).ok());
  const double quorum_lat = client.latencies().values().back();
  EXPECT_GE(full_sync_lat, quorum_lat);
}

TEST_F(RingKvsTest, DeterministicAcrossRuns) {
  auto run = [&](uint64_t seed) -> uint64_t {
    RingOptions o = DefaultOptions();
    o.seed = seed;
    RingCluster cluster(o);
    auto g = cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(2, 1));
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(cluster
                      .Put("d" + std::to_string(i),
                           MakePatternBuffer(100 + i, i), *g)
                      .ok());
    }
    return cluster.simulator().now();
  };
  EXPECT_EQ(run(42), run(42));
}

}  // namespace
}  // namespace ring
