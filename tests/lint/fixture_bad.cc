// Seeded-violation fixture for lint_test: every text rule must fire on this
// file (scanned with force_all_rules). Never compiled into any target.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>

namespace fixture {

struct Sim {
  void Schedule(int) {}
};

struct Status {
  bool ok() const { return true; }
};

inline Status MightFail() { return Status{}; }
inline void Consume(unsigned long, std::string) {}

inline unsigned long long BadWallclock() {
  auto t = std::chrono::steady_clock::now();  // wallclock
  (void)t;
  return static_cast<unsigned long long>(time(nullptr));  // wallclock
}

inline int BadRand() {
  std::random_device rd;  // rand
  (void)rd;
  return rand();  // rand
}

inline int BadUnorderedIter() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& [k, v] : counts) {  // unordered-iter
    total += v;
  }
  return total;
}

inline void BadRawSchedule(Sim* sim) {
  sim->Schedule(7);  // raw-schedule
}

inline void BadBoxedCallback(std::function<void()> fn) {  // boxed-callback
  fn();
}

inline void BadUseAfterMove(std::string s) {
  Consume(s.size(), std::move(s));  // use-after-move
}

inline void BadUncheckedStatus() {
  MightFail();  // unchecked-status
}

}  // namespace fixture
