// Allowlist fixture for lint_test: the same hazards as fixture_bad.cc, each
// silenced with a reviewed `ring-lint: ok(<rule>)` comment. The lint must
// report nothing here even with force_all_rules.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>

namespace fixture {

struct Sim {
  void Schedule(int) {}
};

struct Status {
  bool ok() const { return true; }
};

inline Status MightFail() { return Status{}; }
inline void Consume(unsigned long, std::string) {}

inline unsigned long long OkWallclock() {
  auto t = std::chrono::steady_clock::now();  // ring-lint: ok(wallclock)
  (void)t;
  // ring-lint: ok(wallclock)
  return static_cast<unsigned long long>(time(nullptr));
}

inline int OkRand() {
  std::random_device rd;  // ring-lint: ok(rand)
  (void)rd;
  return rand();  // ring-lint: ok(rand)
}

inline int OkUnorderedIter() {
  std::unordered_map<int, int> counts;
  int total = 0;
  // ring-lint: ok(unordered-iter)
  for (const auto& [k, v] : counts) {
    total += v;
  }
  return total;
}

inline void OkRawSchedule(Sim* sim) {
  sim->Schedule(7);  // ring-lint: ok(raw-schedule)
}

// ring-lint: ok(boxed-callback)
inline void OkBoxedCallback(std::function<void()> fn) {
  fn();
}

inline void OkUseAfterMove(std::string s) {
  // ring-lint: ok(use-after-move)
  Consume(s.size(), std::move(s));
}

inline void OkUncheckedStatus() {
  MightFail();  // ring-lint: ok(unchecked-status)
}

}  // namespace fixture
