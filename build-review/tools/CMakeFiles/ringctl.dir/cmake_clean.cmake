file(REMOVE_RECURSE
  "CMakeFiles/ringctl.dir/ringctl.cc.o"
  "CMakeFiles/ringctl.dir/ringctl.cc.o.d"
  "ringctl"
  "ringctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
