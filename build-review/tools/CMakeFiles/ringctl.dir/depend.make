# Empty dependencies file for ringctl.
# This may be replaced when dependencies are built.
