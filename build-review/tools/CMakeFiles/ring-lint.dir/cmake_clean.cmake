file(REMOVE_RECURSE
  "CMakeFiles/ring-lint.dir/ring_lint.cc.o"
  "CMakeFiles/ring-lint.dir/ring_lint.cc.o.d"
  "ring-lint"
  "ring-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring-lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
