# Empty dependencies file for ring-lint.
# This may be replaced when dependencies are built.
