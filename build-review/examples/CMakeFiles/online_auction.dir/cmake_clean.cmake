file(REMOVE_RECURSE
  "CMakeFiles/online_auction.dir/online_auction.cpp.o"
  "CMakeFiles/online_auction.dir/online_auction.cpp.o.d"
  "online_auction"
  "online_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
