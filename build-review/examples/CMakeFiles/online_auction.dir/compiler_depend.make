# Empty compiler generated dependencies file for online_auction.
# This may be replaced when dependencies are built.
