file(REMOVE_RECURSE
  "CMakeFiles/pagerank_checkpoint.dir/pagerank_checkpoint.cpp.o"
  "CMakeFiles/pagerank_checkpoint.dir/pagerank_checkpoint.cpp.o.d"
  "pagerank_checkpoint"
  "pagerank_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
