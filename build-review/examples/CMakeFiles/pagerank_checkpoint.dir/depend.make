# Empty dependencies file for pagerank_checkpoint.
# This may be replaced when dependencies are built.
