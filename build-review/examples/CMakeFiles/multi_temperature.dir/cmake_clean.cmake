file(REMOVE_RECURSE
  "CMakeFiles/multi_temperature.dir/multi_temperature.cpp.o"
  "CMakeFiles/multi_temperature.dir/multi_temperature.cpp.o.d"
  "multi_temperature"
  "multi_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
