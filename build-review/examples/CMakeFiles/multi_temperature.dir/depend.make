# Empty dependencies file for multi_temperature.
# This may be replaced when dependencies are built.
