# Empty compiler generated dependencies file for blob_store.
# This may be replaced when dependencies are built.
