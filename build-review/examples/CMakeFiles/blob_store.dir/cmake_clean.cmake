file(REMOVE_RECURSE
  "CMakeFiles/blob_store.dir/blob_store.cpp.o"
  "CMakeFiles/blob_store.dir/blob_store.cpp.o.d"
  "blob_store"
  "blob_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
