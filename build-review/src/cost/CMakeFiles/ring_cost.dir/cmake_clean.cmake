file(REMOVE_RECURSE
  "CMakeFiles/ring_cost.dir/pricing.cc.o"
  "CMakeFiles/ring_cost.dir/pricing.cc.o.d"
  "libring_cost.a"
  "libring_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
