
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/pricing.cc" "src/cost/CMakeFiles/ring_cost.dir/pricing.cc.o" "gcc" "src/cost/CMakeFiles/ring_cost.dir/pricing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/workload/CMakeFiles/ring_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/ring_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ring/CMakeFiles/ring_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/consensus/CMakeFiles/ring_consensus.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ring_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ring_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/ring_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ring_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/srs/CMakeFiles/ring_srs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rs/CMakeFiles/ring_rs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matrix/CMakeFiles/ring_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gf/CMakeFiles/ring_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
