# Empty compiler generated dependencies file for ring_cost.
# This may be replaced when dependencies are built.
