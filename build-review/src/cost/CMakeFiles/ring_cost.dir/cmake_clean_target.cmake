file(REMOVE_RECURSE
  "libring_cost.a"
)
