# Empty dependencies file for ring_consensus.
# This may be replaced when dependencies are built.
