file(REMOVE_RECURSE
  "libring_consensus.a"
)
