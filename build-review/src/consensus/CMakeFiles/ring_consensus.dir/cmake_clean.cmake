file(REMOVE_RECURSE
  "CMakeFiles/ring_consensus.dir/config.cc.o"
  "CMakeFiles/ring_consensus.dir/config.cc.o.d"
  "CMakeFiles/ring_consensus.dir/membership.cc.o"
  "CMakeFiles/ring_consensus.dir/membership.cc.o.d"
  "libring_consensus.a"
  "libring_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
