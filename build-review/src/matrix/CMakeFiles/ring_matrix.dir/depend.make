# Empty dependencies file for ring_matrix.
# This may be replaced when dependencies are built.
