file(REMOVE_RECURSE
  "CMakeFiles/ring_matrix.dir/matrix.cc.o"
  "CMakeFiles/ring_matrix.dir/matrix.cc.o.d"
  "libring_matrix.a"
  "libring_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
