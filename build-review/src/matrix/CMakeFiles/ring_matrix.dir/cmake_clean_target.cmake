file(REMOVE_RECURSE
  "libring_matrix.a"
)
