# Empty dependencies file for ring_analysis.
# This may be replaced when dependencies are built.
