
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/lint.cc" "src/analysis/CMakeFiles/ring_analysis.dir/lint.cc.o" "gcc" "src/analysis/CMakeFiles/ring_analysis.dir/lint.cc.o.d"
  "/root/repo/src/analysis/race.cc" "src/analysis/CMakeFiles/ring_analysis.dir/race.cc.o" "gcc" "src/analysis/CMakeFiles/ring_analysis.dir/race.cc.o.d"
  "/root/repo/src/analysis/vector_clock.cc" "src/analysis/CMakeFiles/ring_analysis.dir/vector_clock.cc.o" "gcc" "src/analysis/CMakeFiles/ring_analysis.dir/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/obs/CMakeFiles/ring_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/ring_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
