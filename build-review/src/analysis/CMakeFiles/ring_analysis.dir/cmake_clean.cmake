file(REMOVE_RECURSE
  "CMakeFiles/ring_analysis.dir/lint.cc.o"
  "CMakeFiles/ring_analysis.dir/lint.cc.o.d"
  "CMakeFiles/ring_analysis.dir/race.cc.o"
  "CMakeFiles/ring_analysis.dir/race.cc.o.d"
  "CMakeFiles/ring_analysis.dir/vector_clock.cc.o"
  "CMakeFiles/ring_analysis.dir/vector_clock.cc.o.d"
  "libring_analysis.a"
  "libring_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
