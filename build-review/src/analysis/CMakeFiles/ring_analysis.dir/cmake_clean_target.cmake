file(REMOVE_RECURSE
  "libring_analysis.a"
)
