file(REMOVE_RECURSE
  "libring_core.a"
)
