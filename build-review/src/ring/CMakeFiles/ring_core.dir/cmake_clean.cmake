file(REMOVE_RECURSE
  "CMakeFiles/ring_core.dir/client.cc.o"
  "CMakeFiles/ring_core.dir/client.cc.o.d"
  "CMakeFiles/ring_core.dir/cluster.cc.o"
  "CMakeFiles/ring_core.dir/cluster.cc.o.d"
  "CMakeFiles/ring_core.dir/metadata.cc.o"
  "CMakeFiles/ring_core.dir/metadata.cc.o.d"
  "CMakeFiles/ring_core.dir/registry.cc.o"
  "CMakeFiles/ring_core.dir/registry.cc.o.d"
  "CMakeFiles/ring_core.dir/runtime.cc.o"
  "CMakeFiles/ring_core.dir/runtime.cc.o.d"
  "CMakeFiles/ring_core.dir/server.cc.o"
  "CMakeFiles/ring_core.dir/server.cc.o.d"
  "CMakeFiles/ring_core.dir/server_recovery.cc.o"
  "CMakeFiles/ring_core.dir/server_recovery.cc.o.d"
  "libring_core.a"
  "libring_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
