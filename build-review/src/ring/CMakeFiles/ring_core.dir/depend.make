# Empty dependencies file for ring_core.
# This may be replaced when dependencies are built.
