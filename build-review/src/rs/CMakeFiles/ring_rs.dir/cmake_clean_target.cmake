file(REMOVE_RECURSE
  "libring_rs.a"
)
