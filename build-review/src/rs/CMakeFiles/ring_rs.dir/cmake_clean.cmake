file(REMOVE_RECURSE
  "CMakeFiles/ring_rs.dir/crs_bitmatrix.cc.o"
  "CMakeFiles/ring_rs.dir/crs_bitmatrix.cc.o.d"
  "CMakeFiles/ring_rs.dir/rs_code.cc.o"
  "CMakeFiles/ring_rs.dir/rs_code.cc.o.d"
  "libring_rs.a"
  "libring_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
