# Empty dependencies file for ring_rs.
# This may be replaced when dependencies are built.
