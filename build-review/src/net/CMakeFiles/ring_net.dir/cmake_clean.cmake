file(REMOVE_RECURSE
  "CMakeFiles/ring_net.dir/fabric.cc.o"
  "CMakeFiles/ring_net.dir/fabric.cc.o.d"
  "libring_net.a"
  "libring_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
