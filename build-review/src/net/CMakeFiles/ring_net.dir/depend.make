# Empty dependencies file for ring_net.
# This may be replaced when dependencies are built.
