file(REMOVE_RECURSE
  "libring_net.a"
)
