file(REMOVE_RECURSE
  "libring_gf.a"
)
