file(REMOVE_RECURSE
  "CMakeFiles/ring_gf.dir/gf256.cc.o"
  "CMakeFiles/ring_gf.dir/gf256.cc.o.d"
  "CMakeFiles/ring_gf.dir/gf256_simd.cc.o"
  "CMakeFiles/ring_gf.dir/gf256_simd.cc.o.d"
  "libring_gf.a"
  "libring_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
