# Empty dependencies file for ring_gf.
# This may be replaced when dependencies are built.
