file(REMOVE_RECURSE
  "CMakeFiles/ring_baselines.dir/baselines.cc.o"
  "CMakeFiles/ring_baselines.dir/baselines.cc.o.d"
  "libring_baselines.a"
  "libring_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
