file(REMOVE_RECURSE
  "libring_baselines.a"
)
