# Empty compiler generated dependencies file for ring_baselines.
# This may be replaced when dependencies are built.
