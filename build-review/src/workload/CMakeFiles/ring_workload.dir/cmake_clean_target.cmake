file(REMOVE_RECURSE
  "libring_workload.a"
)
