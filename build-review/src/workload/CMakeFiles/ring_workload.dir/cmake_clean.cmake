file(REMOVE_RECURSE
  "CMakeFiles/ring_workload.dir/drivers.cc.o"
  "CMakeFiles/ring_workload.dir/drivers.cc.o.d"
  "CMakeFiles/ring_workload.dir/spc_trace.cc.o"
  "CMakeFiles/ring_workload.dir/spc_trace.cc.o.d"
  "CMakeFiles/ring_workload.dir/ycsb.cc.o"
  "CMakeFiles/ring_workload.dir/ycsb.cc.o.d"
  "CMakeFiles/ring_workload.dir/zipf.cc.o"
  "CMakeFiles/ring_workload.dir/zipf.cc.o.d"
  "libring_workload.a"
  "libring_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
