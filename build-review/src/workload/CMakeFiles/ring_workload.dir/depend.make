# Empty dependencies file for ring_workload.
# This may be replaced when dependencies are built.
