file(REMOVE_RECURSE
  "libring_obs.a"
)
