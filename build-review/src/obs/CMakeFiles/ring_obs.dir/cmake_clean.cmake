file(REMOVE_RECURSE
  "CMakeFiles/ring_obs.dir/metrics.cc.o"
  "CMakeFiles/ring_obs.dir/metrics.cc.o.d"
  "CMakeFiles/ring_obs.dir/trace.cc.o"
  "CMakeFiles/ring_obs.dir/trace.cc.o.d"
  "libring_obs.a"
  "libring_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
