# Empty dependencies file for ring_obs.
# This may be replaced when dependencies are built.
