file(REMOVE_RECURSE
  "CMakeFiles/ring_reliability.dir/ctmc.cc.o"
  "CMakeFiles/ring_reliability.dir/ctmc.cc.o.d"
  "CMakeFiles/ring_reliability.dir/models.cc.o"
  "CMakeFiles/ring_reliability.dir/models.cc.o.d"
  "libring_reliability.a"
  "libring_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
