# Empty dependencies file for ring_reliability.
# This may be replaced when dependencies are built.
