file(REMOVE_RECURSE
  "libring_reliability.a"
)
