# Empty dependencies file for ring_srs.
# This may be replaced when dependencies are built.
