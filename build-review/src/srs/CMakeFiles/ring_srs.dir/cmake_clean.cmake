file(REMOVE_RECURSE
  "CMakeFiles/ring_srs.dir/address_map.cc.o"
  "CMakeFiles/ring_srs.dir/address_map.cc.o.d"
  "CMakeFiles/ring_srs.dir/srs_code.cc.o"
  "CMakeFiles/ring_srs.dir/srs_code.cc.o.d"
  "libring_srs.a"
  "libring_srs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_srs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
