file(REMOVE_RECURSE
  "libring_srs.a"
)
