file(REMOVE_RECURSE
  "libring_policy.a"
)
