file(REMOVE_RECURSE
  "CMakeFiles/ring_policy.dir/access_tracker.cc.o"
  "CMakeFiles/ring_policy.dir/access_tracker.cc.o.d"
  "CMakeFiles/ring_policy.dir/autotier.cc.o"
  "CMakeFiles/ring_policy.dir/autotier.cc.o.d"
  "CMakeFiles/ring_policy.dir/mover.cc.o"
  "CMakeFiles/ring_policy.dir/mover.cc.o.d"
  "CMakeFiles/ring_policy.dir/policy.cc.o"
  "CMakeFiles/ring_policy.dir/policy.cc.o.d"
  "libring_policy.a"
  "libring_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
