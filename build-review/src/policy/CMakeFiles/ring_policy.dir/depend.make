# Empty dependencies file for ring_policy.
# This may be replaced when dependencies are built.
