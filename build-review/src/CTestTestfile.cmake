# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("analysis")
subdirs("gf")
subdirs("matrix")
subdirs("rs")
subdirs("srs")
subdirs("reliability")
subdirs("sim")
subdirs("net")
subdirs("consensus")
subdirs("ring")
subdirs("workload")
subdirs("cost")
subdirs("policy")
subdirs("baselines")
