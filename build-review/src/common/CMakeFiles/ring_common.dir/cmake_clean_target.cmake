file(REMOVE_RECURSE
  "libring_common.a"
)
