# Empty dependencies file for ring_common.
# This may be replaced when dependencies are built.
