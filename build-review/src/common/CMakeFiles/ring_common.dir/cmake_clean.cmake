file(REMOVE_RECURSE
  "CMakeFiles/ring_common.dir/bytes.cc.o"
  "CMakeFiles/ring_common.dir/bytes.cc.o.d"
  "CMakeFiles/ring_common.dir/flags.cc.o"
  "CMakeFiles/ring_common.dir/flags.cc.o.d"
  "CMakeFiles/ring_common.dir/hash.cc.o"
  "CMakeFiles/ring_common.dir/hash.cc.o.d"
  "CMakeFiles/ring_common.dir/logging.cc.o"
  "CMakeFiles/ring_common.dir/logging.cc.o.d"
  "CMakeFiles/ring_common.dir/rng.cc.o"
  "CMakeFiles/ring_common.dir/rng.cc.o.d"
  "CMakeFiles/ring_common.dir/stats.cc.o"
  "CMakeFiles/ring_common.dir/stats.cc.o.d"
  "CMakeFiles/ring_common.dir/status.cc.o"
  "CMakeFiles/ring_common.dir/status.cc.o.d"
  "libring_common.a"
  "libring_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
