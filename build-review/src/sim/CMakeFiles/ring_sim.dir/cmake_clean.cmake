file(REMOVE_RECURSE
  "CMakeFiles/ring_sim.dir/calibrate.cc.o"
  "CMakeFiles/ring_sim.dir/calibrate.cc.o.d"
  "CMakeFiles/ring_sim.dir/event_queue.cc.o"
  "CMakeFiles/ring_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ring_sim.dir/simulator.cc.o"
  "CMakeFiles/ring_sim.dir/simulator.cc.o.d"
  "libring_sim.a"
  "libring_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
