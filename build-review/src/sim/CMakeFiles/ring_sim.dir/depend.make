# Empty dependencies file for ring_sim.
# This may be replaced when dependencies are built.
