file(REMOVE_RECURSE
  "libring_sim.a"
)
