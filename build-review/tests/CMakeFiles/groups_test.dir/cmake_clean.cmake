file(REMOVE_RECURSE
  "CMakeFiles/groups_test.dir/groups_test.cc.o"
  "CMakeFiles/groups_test.dir/groups_test.cc.o.d"
  "groups_test"
  "groups_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
