file(REMOVE_RECURSE
  "CMakeFiles/failure_matrix_test.dir/failure_matrix_test.cc.o"
  "CMakeFiles/failure_matrix_test.dir/failure_matrix_test.cc.o.d"
  "failure_matrix_test"
  "failure_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
