# Empty compiler generated dependencies file for failure_matrix_test.
# This may be replaced when dependencies are built.
