file(REMOVE_RECURSE
  "CMakeFiles/consistency_fuzz_test.dir/consistency_fuzz_test.cc.o"
  "CMakeFiles/consistency_fuzz_test.dir/consistency_fuzz_test.cc.o.d"
  "consistency_fuzz_test"
  "consistency_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
