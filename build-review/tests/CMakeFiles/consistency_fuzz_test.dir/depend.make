# Empty dependencies file for consistency_fuzz_test.
# This may be replaced when dependencies are built.
