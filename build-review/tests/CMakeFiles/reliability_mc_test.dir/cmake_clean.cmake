file(REMOVE_RECURSE
  "CMakeFiles/reliability_mc_test.dir/reliability_mc_test.cc.o"
  "CMakeFiles/reliability_mc_test.dir/reliability_mc_test.cc.o.d"
  "reliability_mc_test"
  "reliability_mc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
