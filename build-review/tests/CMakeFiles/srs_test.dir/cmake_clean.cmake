file(REMOVE_RECURSE
  "CMakeFiles/srs_test.dir/srs_test.cc.o"
  "CMakeFiles/srs_test.dir/srs_test.cc.o.d"
  "srs_test"
  "srs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
