# Empty dependencies file for srs_test.
# This may be replaced when dependencies are built.
