file(REMOVE_RECURSE
  "CMakeFiles/ring_test.dir/ring_test.cc.o"
  "CMakeFiles/ring_test.dir/ring_test.cc.o.d"
  "ring_test"
  "ring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
