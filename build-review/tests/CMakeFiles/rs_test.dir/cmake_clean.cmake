file(REMOVE_RECURSE
  "CMakeFiles/rs_test.dir/rs_test.cc.o"
  "CMakeFiles/rs_test.dir/rs_test.cc.o.d"
  "rs_test"
  "rs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
