# Empty compiler generated dependencies file for rs_test.
# This may be replaced when dependencies are built.
