# Empty compiler generated dependencies file for fig10_pricing.
# This may be replaced when dependencies are built.
