file(REMOVE_RECURSE
  "CMakeFiles/fig10_pricing.dir/fig10_pricing.cc.o"
  "CMakeFiles/fig10_pricing.dir/fig10_pricing.cc.o.d"
  "fig10_pricing"
  "fig10_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
