# Empty compiler generated dependencies file for fig16_availability.
# This may be replaced when dependencies are built.
