file(REMOVE_RECURSE
  "CMakeFiles/fig16_availability.dir/fig16_availability.cc.o"
  "CMakeFiles/fig16_availability.dir/fig16_availability.cc.o.d"
  "fig16_availability"
  "fig16_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
