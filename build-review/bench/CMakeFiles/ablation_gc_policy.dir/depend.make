# Empty dependencies file for ablation_gc_policy.
# This may be replaced when dependencies are built.
