file(REMOVE_RECURSE
  "CMakeFiles/ablation_gc_policy.dir/ablation_gc_policy.cc.o"
  "CMakeFiles/ablation_gc_policy.dir/ablation_gc_policy.cc.o.d"
  "ablation_gc_policy"
  "ablation_gc_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
