# Empty compiler generated dependencies file for table1_tradeoffs.
# This may be replaced when dependencies are built.
