file(REMOVE_RECURSE
  "CMakeFiles/table1_tradeoffs.dir/table1_tradeoffs.cc.o"
  "CMakeFiles/table1_tradeoffs.dir/table1_tradeoffs.cc.o.d"
  "table1_tradeoffs"
  "table1_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
