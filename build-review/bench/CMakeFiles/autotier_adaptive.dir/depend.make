# Empty dependencies file for autotier_adaptive.
# This may be replaced when dependencies are built.
