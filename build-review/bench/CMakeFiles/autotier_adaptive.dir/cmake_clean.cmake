file(REMOVE_RECURSE
  "CMakeFiles/autotier_adaptive.dir/autotier_adaptive.cc.o"
  "CMakeFiles/autotier_adaptive.dir/autotier_adaptive.cc.o.d"
  "autotier_adaptive"
  "autotier_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotier_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
