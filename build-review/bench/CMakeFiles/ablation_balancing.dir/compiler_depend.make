# Empty compiler generated dependencies file for ablation_balancing.
# This may be replaced when dependencies are built.
