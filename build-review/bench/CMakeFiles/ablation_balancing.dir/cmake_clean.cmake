file(REMOVE_RECURSE
  "CMakeFiles/ablation_balancing.dir/ablation_balancing.cc.o"
  "CMakeFiles/ablation_balancing.dir/ablation_balancing.cc.o.d"
  "ablation_balancing"
  "ablation_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
