file(REMOVE_RECURSE
  "CMakeFiles/fig9_throughput.dir/fig9_throughput.cc.o"
  "CMakeFiles/fig9_throughput.dir/fig9_throughput.cc.o.d"
  "fig9_throughput"
  "fig9_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
