file(REMOVE_RECURSE
  "CMakeFiles/ablation_unavailability.dir/ablation_unavailability.cc.o"
  "CMakeFiles/ablation_unavailability.dir/ablation_unavailability.cc.o.d"
  "ablation_unavailability"
  "ablation_unavailability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unavailability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
