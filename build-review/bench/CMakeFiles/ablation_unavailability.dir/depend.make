# Empty dependencies file for ablation_unavailability.
# This may be replaced when dependencies are built.
