file(REMOVE_RECURSE
  "CMakeFiles/fig13_block_recovery.dir/fig13_block_recovery.cc.o"
  "CMakeFiles/fig13_block_recovery.dir/fig13_block_recovery.cc.o.d"
  "fig13_block_recovery"
  "fig13_block_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_block_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
