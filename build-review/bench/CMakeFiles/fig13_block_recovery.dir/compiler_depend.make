# Empty compiler generated dependencies file for fig13_block_recovery.
# This may be replaced when dependencies are built.
