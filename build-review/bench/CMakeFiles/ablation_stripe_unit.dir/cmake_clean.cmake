file(REMOVE_RECURSE
  "CMakeFiles/ablation_stripe_unit.dir/ablation_stripe_unit.cc.o"
  "CMakeFiles/ablation_stripe_unit.dir/ablation_stripe_unit.cc.o.d"
  "ablation_stripe_unit"
  "ablation_stripe_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stripe_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
