# Empty dependencies file for ablation_stripe_unit.
# This may be replaced when dependencies are built.
