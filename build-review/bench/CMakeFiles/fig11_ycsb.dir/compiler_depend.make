# Empty compiler generated dependencies file for fig11_ycsb.
# This may be replaced when dependencies are built.
