file(REMOVE_RECURSE
  "CMakeFiles/fig11_ycsb.dir/fig11_ycsb.cc.o"
  "CMakeFiles/fig11_ycsb.dir/fig11_ycsb.cc.o.d"
  "fig11_ycsb"
  "fig11_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
