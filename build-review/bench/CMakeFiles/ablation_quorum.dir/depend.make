# Empty dependencies file for ablation_quorum.
# This may be replaced when dependencies are built.
