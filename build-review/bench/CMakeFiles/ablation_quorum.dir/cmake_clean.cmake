file(REMOVE_RECURSE
  "CMakeFiles/ablation_quorum.dir/ablation_quorum.cc.o"
  "CMakeFiles/ablation_quorum.dir/ablation_quorum.cc.o.d"
  "ablation_quorum"
  "ablation_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
