file(REMOVE_RECURSE
  "CMakeFiles/fig8_move.dir/fig8_move.cc.o"
  "CMakeFiles/fig8_move.dir/fig8_move.cc.o.d"
  "fig8_move"
  "fig8_move.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_move.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
