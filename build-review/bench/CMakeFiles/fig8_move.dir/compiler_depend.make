# Empty compiler generated dependencies file for fig8_move.
# This may be replaced when dependencies are built.
