file(REMOVE_RECURSE
  "CMakeFiles/ablation_srs_remap.dir/ablation_srs_remap.cc.o"
  "CMakeFiles/ablation_srs_remap.dir/ablation_srs_remap.cc.o.d"
  "ablation_srs_remap"
  "ablation_srs_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_srs_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
