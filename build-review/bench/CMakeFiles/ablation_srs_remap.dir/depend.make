# Empty dependencies file for ablation_srs_remap.
# This may be replaced when dependencies are built.
