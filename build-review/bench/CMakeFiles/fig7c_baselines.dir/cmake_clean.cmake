file(REMOVE_RECURSE
  "CMakeFiles/fig7c_baselines.dir/fig7c_baselines.cc.o"
  "CMakeFiles/fig7c_baselines.dir/fig7c_baselines.cc.o.d"
  "fig7c_baselines"
  "fig7c_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
