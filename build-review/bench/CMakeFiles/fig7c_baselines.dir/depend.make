# Empty dependencies file for fig7c_baselines.
# This may be replaced when dependencies are built.
