# Empty compiler generated dependencies file for fig2_reliability.
# This may be replaced when dependencies are built.
