file(REMOVE_RECURSE
  "CMakeFiles/fig2_reliability.dir/fig2_reliability.cc.o"
  "CMakeFiles/fig2_reliability.dir/fig2_reliability.cc.o.d"
  "fig2_reliability"
  "fig2_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
