# Empty compiler generated dependencies file for fig12_metadata_recovery.
# This may be replaced when dependencies are built.
