file(REMOVE_RECURSE
  "CMakeFiles/fig12_metadata_recovery.dir/fig12_metadata_recovery.cc.o"
  "CMakeFiles/fig12_metadata_recovery.dir/fig12_metadata_recovery.cc.o.d"
  "fig12_metadata_recovery"
  "fig12_metadata_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_metadata_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
